//! The access-pattern abstraction: address generation as a first-class,
//! swappable concern.
//!
//! vecmem-lint: alloc-free
//!
//! Historically every workload in the repo was the paper's constant-stride
//! stream, with the address arithmetic hard-coded into the stream types.
//! This module extracts that concern into the [`AccessPattern`] trait —
//! the *k*-th request of a port, a packed-slot encoding of the port's
//! progress for cyclic-state detection, and a periodicity hint — and a
//! generic per-port adapter, [`PatternWorkload`], that implements
//! [`Workload`]/[`ObservableWorkload`] for any pattern.
//!
//! Three pattern families ship with the core:
//!
//! * [`StridePattern`] — the canonical re-expression of the paper's
//!   constant-stride stream. Its packed-slot encoding is the current bank
//!   (finished marker `m`, bound `m`), **bitwise-identical** to the
//!   stride-specialised `StreamWorkload` it generalises: same
//!   [`SimState`](crate::state::SimState) layout, same hash, same stats.
//! * [`GatherPattern`] — indexed gather/scatter, `addr(k) = base +
//!   ix(k)` with [`IndexPattern`] index generation. Affine index vectors
//!   are periodic (slot = `k mod P`); pseudo-random ones are aperiodic
//!   (slot = raw issue count, no bound, `period_hint` = `None`), which the
//!   steady-state solver answers with a budgeted windowed estimate.
//! * [`BurstPattern`] — strided access with amortised multi-word grants:
//!   each grant transfers `B` words and the port then idles `B − 1`
//!   periods (the cooldown, aged by [`Workload::tick`]). The packed slot
//!   encodes (reduced position, cooldown) together.
//!
//! Patterns are row-aware: constructed with `rows > 0` (the DRAM bank
//! model's row count) they derive each request's bank-local row from the
//! word address, and widen their slot encoding so the reduced position
//! still determines all future requests — rows and banks both. With
//! `rows = 0` (the uniform model) the row is `0` and the legacy encodings
//! apply unchanged.

use crate::config::{BankModel, SimConfig};
use crate::request::{PortId, Request};
use crate::steady::ObservableWorkload;
use crate::workload::Workload;
use vecmem_analytic::{Geometry, StreamSpec};

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Reduced period of the (bank, row) sequence of an arithmetic address
/// walk `addr(k) = start + k·d` over `m` banks and `rows` rows per bank
/// (`rows = 0` = no row tracking): the smallest `T` with
/// `addr(k + T) ≡ addr(k)` modulo bank *and* row.
fn arith_state_period(distance: u64, banks: u64, rows: u64) -> u64 {
    let modulus = banks * rows.max(1);
    modulus / gcd(distance % modulus, modulus)
}

/// Address generation for one port, decoupled from arbitration: the
/// *k*-th request, a packed-slot encoding of progress for cyclic-state
/// detection, and a periodicity hint.
///
/// The packed slot, together with the pattern's static parameters, must
/// determine every future request of the port — it is what the
/// steady-state detector hashes and compares (see
/// [`ObservableWorkload::signature_bound`] for the bound contract).
pub trait AccessPattern: Clone {
    /// The `k`-th request of the port (bank, and bank-local row under a
    /// DRAM bank model).
    fn request_at(&self, k: u64) -> Request;

    /// Packed-slot encoding of the port's progress after `k` grants with
    /// `cooldown` burst-idle periods remaining. Must determine all future
    /// requests together with the pattern's static parameters.
    fn encode_slot(&self, k: u64, cooldown: u64) -> u64;

    /// Inverse of [`encode_slot`](Self::encode_slot) up to position
    /// reduction: `(reduced position, cooldown)`. Diagnostics and
    /// conformance tests only — the hot paths never decode.
    fn decode_slot(&self, slot: u64) -> (u64, u64);

    /// The marker slot written for a finished (finite) port. Must be
    /// distinct from every live encoding and still within
    /// [`slot_bound`](Self::slot_bound).
    fn finished_code(&self) -> u64;

    /// Inclusive upper bound on every slot this pattern can encode,
    /// including [`finished_code`](Self::finished_code); `None` when the
    /// encoding is unbounded (aperiodic patterns).
    fn slot_bound(&self) -> Option<u64>;

    /// Period of the request sequence in the grant count `k`, when one
    /// exists: `request_at(k + p) == request_at(k)` for all `k`. `None`
    /// declares the pattern aperiodic, routing steady-state measurement to
    /// the budgeted windowed estimate.
    fn period_hint(&self) -> Option<u64>;

    /// Words transferred per grant. A port idles `burst() − 1` periods
    /// after each grant; the default single-word access never idles.
    fn burst(&self) -> u64 {
        1
    }

    /// `request_at(k)` given the port's previous request (`request_at(k −
    /// 1)`), for patterns that can step incrementally. The default
    /// recomputes from scratch; [`StridePattern`] overrides it so the
    /// per-grant hot path is one add and a conditional subtract instead of
    /// wide-integer arithmetic. Must equal `request_at(k)` exactly.
    // vecmem-lint: hot-path
    #[inline]
    fn advance(&self, k: u64, _prev: &Request) -> Request {
        self.request_at(k)
    }

    /// [`encode_slot`](Self::encode_slot) given the port's cached upcoming
    /// request (`request_at(k)`). The default delegates; [`StridePattern`]
    /// overrides it to reuse the cached bank on the uniform model, keeping
    /// the per-cycle signature write allocation- and division-free. Must
    /// equal `encode_slot(k, cooldown)` exactly.
    #[inline]
    fn encode_slot_at(&self, k: u64, cooldown: u64, _current: &Request) -> u64 {
        self.encode_slot(k, cooldown)
    }
}

/// The paper's constant-stride stream as an [`AccessPattern`]: `addr(k) =
/// start_bank + k·distance`, bank `addr mod m`.
///
/// With `rows = 0` this is the canonical re-expression of the legacy
/// stride stream: the packed slot is the **current bank** (finished
/// marker `m`), exactly the encoding `StreamWorkload` used, so the packed
/// state, hash and stats are bitwise-identical. With `rows > 0` the slot
/// is the reduced position `k mod T` instead, since the bank alone no
/// longer determines the upcoming rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StridePattern {
    start: u64,
    distance: u64,
    banks: u64,
    rows: u64,
    state_period: u64,
    /// `distance mod banks`, precomputed for the incremental hot path.
    step: u64,
}

impl StridePattern {
    /// Stride `spec` on `geom`'s banks, uniform bank model (no rows).
    #[must_use]
    pub fn new(geom: &Geometry, spec: StreamSpec) -> Self {
        Self::with_rows(geom, spec, 0)
    }

    /// Stride `spec` with DRAM row derivation: the word address is taken
    /// as `start_bank + k·distance`, the row as `(addr / m) mod rows`.
    /// `rows = 0` disables row tracking (uniform model).
    #[must_use]
    pub fn with_rows(geom: &Geometry, spec: StreamSpec, rows: u64) -> Self {
        let banks = geom.banks();
        Self {
            start: spec.start_bank,
            distance: spec.distance,
            banks,
            rows,
            state_period: arith_state_period(spec.distance, banks, rows),
            step: spec.distance % banks,
        }
    }
}

impl AccessPattern for StridePattern {
    #[inline]
    fn request_at(&self, k: u64) -> Request {
        let addr = u128::from(self.start) + u128::from(k) * u128::from(self.distance);
        let bank = (addr % u128::from(self.banks)) as u64;
        let row = if self.rows == 0 {
            0
        } else {
            // vecmem-lint: allow(L7) -- banks >= 1 by the validated geometry; rows != 0 on this branch
            ((addr / u128::from(self.banks)) % u128::from(self.rows)) as u64
        };
        Request { bank, row }
    }

    #[inline]
    fn encode_slot(&self, k: u64, _cooldown: u64) -> u64 {
        if self.rows == 0 {
            self.request_at(k).bank
        } else {
            k % self.state_period
        }
    }

    fn decode_slot(&self, slot: u64) -> (u64, u64) {
        (slot, 0)
    }

    fn finished_code(&self) -> u64 {
        if self.rows == 0 {
            self.banks
        } else {
            self.state_period
        }
    }

    fn slot_bound(&self) -> Option<u64> {
        Some(self.finished_code())
    }

    fn period_hint(&self) -> Option<u64> {
        Some(self.state_period)
    }

    // vecmem-lint: hot-path
    // vecmem-lint: overflow-policy
    #[inline]
    fn advance(&self, k: u64, prev: &Request) -> Request {
        if self.rows != 0 {
            return self.request_at(k);
        }
        // vecmem-lint: allow(L9) -- bank < banks and step < banks (both validated), so the sum stays below 2·banks
        let bank = prev.bank + self.step;
        let bank = if bank >= self.banks {
            bank - self.banks
        } else {
            bank
        };
        Request { bank, row: 0 }
    }

    #[inline]
    fn encode_slot_at(&self, k: u64, _cooldown: u64, current: &Request) -> u64 {
        if self.rows == 0 {
            current.bank
        } else {
            k % self.state_period
        }
    }
}

/// How a gather's index vector is generated. `ix(k)` is always in
/// `0..span`.
///
/// (Migrated from `vproc::gather`, which re-exports it: the gather
/// prototype now runs on the shared pattern machinery.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexPattern {
    /// `ix(k) = (a·k + c) mod span` — affine shuffles (sorted-by-key data,
    /// permutations). With `a = 1` this degenerates to a strided walk.
    Affine {
        /// Multiplier.
        a: u64,
        /// Offset.
        c: u64,
    },
    /// A deterministic pseudo-random permutation-ish walk (hash-table
    /// probing, sparse matrices). Aperiodic by construction.
    PseudoRandom {
        /// Mix seed.
        seed: u64,
    },
}

impl IndexPattern {
    /// The k-th index in `0..span`.
    #[must_use]
    pub fn index(&self, k: u64, span: u64) -> u64 {
        match *self {
            Self::Affine { a, c } => ((a as u128 * k as u128 + c as u128) % span as u128) as u64,
            Self::PseudoRandom { seed } => {
                // SplitMix64-style mix of (seed, k), reduced to the span —
                // deterministic, stateless, well spread.
                let mut z = seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) % span
            }
        }
    }

    /// Period of the index sequence in `k`, or `None` for the aperiodic
    /// pseudo-random walk.
    #[must_use]
    pub fn period(&self, span: u64) -> Option<u64> {
        match *self {
            Self::Affine { a, .. } => Some(span / gcd(a % span, span).max(1)),
            Self::PseudoRandom { .. } => None,
        }
    }
}

/// Indexed gather/scatter as an [`AccessPattern`]: `addr(k) = base +
/// ix(k)`, bank `addr mod m`, row `(addr / m) mod rows` when rows are
/// tracked.
///
/// Affine index vectors make the pattern periodic with the index period
/// `P` (slot = `k mod P`, marker `P`); pseudo-random ones are aperiodic —
/// the slot is the raw issue count, the bound `None`, and the periodicity
/// hint `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatherPattern {
    base: u64,
    span: u64,
    index: IndexPattern,
    banks: u64,
    rows: u64,
    period: Option<u64>,
}

impl GatherPattern {
    /// A gather over `base .. base + span` on `geom`'s banks, uniform
    /// bank model.
    ///
    /// # Panics
    /// If `span` is zero.
    #[must_use]
    pub fn new(geom: &Geometry, base: u64, span: u64, index: IndexPattern) -> Self {
        Self::with_rows(geom, base, span, index, 0)
    }

    /// A gather with DRAM row derivation (`rows = 0` = uniform model).
    ///
    /// # Panics
    /// If `span` is zero.
    #[must_use]
    pub fn with_rows(
        geom: &Geometry,
        base: u64,
        span: u64,
        index: IndexPattern,
        rows: u64,
    ) -> Self {
        assert!(span > 0, "gather span must be positive");
        Self {
            base,
            span,
            index,
            banks: geom.banks(),
            rows,
            period: index.period(span),
        }
    }
}

impl AccessPattern for GatherPattern {
    #[inline]
    fn request_at(&self, k: u64) -> Request {
        let addr = self.base + self.index.index(k, self.span);
        let bank = addr % self.banks;
        let row = if self.rows == 0 {
            0
        } else {
            // vecmem-lint: allow(L7) -- banks >= 1 by the validated geometry; rows != 0 on this branch
            (addr / self.banks) % self.rows
        };
        Request { bank, row }
    }

    #[inline]
    fn encode_slot(&self, k: u64, _cooldown: u64) -> u64 {
        match self.period {
            Some(p) => k % p,
            None => k,
        }
    }

    fn decode_slot(&self, slot: u64) -> (u64, u64) {
        (slot, 0)
    }

    fn finished_code(&self) -> u64 {
        self.period.unwrap_or(u64::MAX)
    }

    fn slot_bound(&self) -> Option<u64> {
        self.period
    }

    fn period_hint(&self) -> Option<u64> {
        self.period
    }
}

/// Strided access with amortised multi-word grants: every grant transfers
/// `burst` words, after which the port idles `burst − 1` clock periods
/// (its cooldown, aged once per cycle by the step kernel's
/// [`Workload::tick`] call).
///
/// The packed slot encodes position and cooldown together: `(k mod
/// T)·burst + cooldown`, marker `T·burst`, so the detector sees the full
/// time-dependent port state. With `burst = 1` the behaviour degenerates
/// exactly to [`StridePattern`]'s (the cooldown is always zero at
/// signature time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstPattern {
    start: u64,
    distance: u64,
    burst: u64,
    banks: u64,
    rows: u64,
    state_period: u64,
}

impl BurstPattern {
    /// Stride `spec` with `burst` words per grant, uniform bank model.
    ///
    /// # Panics
    /// If `burst` is zero.
    #[must_use]
    pub fn new(geom: &Geometry, spec: StreamSpec, burst: u64) -> Self {
        Self::with_rows(geom, spec, burst, 0)
    }

    /// Burst stride with DRAM row derivation (`rows = 0` = uniform).
    ///
    /// # Panics
    /// If `burst` is zero.
    #[must_use]
    pub fn with_rows(geom: &Geometry, spec: StreamSpec, burst: u64, rows: u64) -> Self {
        assert!(burst >= 1, "burst must be at least one word per grant");
        let banks = geom.banks();
        Self {
            start: spec.start_bank,
            distance: spec.distance,
            burst,
            banks,
            rows,
            state_period: arith_state_period(spec.distance, banks, rows),
        }
    }
}

impl AccessPattern for BurstPattern {
    #[inline]
    fn request_at(&self, k: u64) -> Request {
        let addr = u128::from(self.start) + u128::from(k) * u128::from(self.distance);
        let bank = (addr % u128::from(self.banks)) as u64;
        let row = if self.rows == 0 {
            0
        } else {
            // vecmem-lint: allow(L7) -- banks >= 1 by the validated geometry; rows != 0 on this branch
            ((addr / u128::from(self.banks)) % u128::from(self.rows)) as u64
        };
        Request { bank, row }
    }

    #[inline]
    fn encode_slot(&self, k: u64, cooldown: u64) -> u64 {
        debug_assert!(
            cooldown < self.burst,
            "cooldown {cooldown} of {}",
            self.burst
        );
        (k % self.state_period) * self.burst + cooldown
    }

    fn decode_slot(&self, slot: u64) -> (u64, u64) {
        (slot / self.burst, slot % self.burst)
    }

    fn finished_code(&self) -> u64 {
        self.state_period * self.burst
    }

    fn slot_bound(&self) -> Option<u64> {
        Some(self.finished_code())
    }

    fn period_hint(&self) -> Option<u64> {
        Some(self.state_period)
    }

    fn burst(&self) -> u64 {
        self.burst
    }

    // vecmem-lint: hot-path
    #[inline]
    fn advance(&self, k: u64, prev: &Request) -> Request {
        if self.rows != 0 {
            return self.request_at(k);
        }
        let bank = prev.bank + self.distance % self.banks;
        let bank = if bank >= self.banks {
            bank - self.banks
        } else {
            bank
        };
        Request { bank, row: 0 }
    }
}

/// Runtime-polymorphic pattern: any of the three shipped families behind
/// one concrete type, so mixed-pattern workloads and spec-driven
/// construction need no generics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyPattern {
    /// Constant-stride stream.
    Stride(StridePattern),
    /// Indexed gather/scatter.
    Gather(GatherPattern),
    /// Strided multi-word burst.
    Burst(BurstPattern),
}

impl AccessPattern for AnyPattern {
    #[inline]
    fn request_at(&self, k: u64) -> Request {
        match self {
            Self::Stride(p) => p.request_at(k),
            Self::Gather(p) => p.request_at(k),
            Self::Burst(p) => p.request_at(k),
        }
    }
    #[inline]
    fn encode_slot(&self, k: u64, cooldown: u64) -> u64 {
        match self {
            Self::Stride(p) => p.encode_slot(k, cooldown),
            Self::Gather(p) => p.encode_slot(k, cooldown),
            Self::Burst(p) => p.encode_slot(k, cooldown),
        }
    }
    fn decode_slot(&self, slot: u64) -> (u64, u64) {
        match self {
            Self::Stride(p) => p.decode_slot(slot),
            Self::Gather(p) => p.decode_slot(slot),
            Self::Burst(p) => p.decode_slot(slot),
        }
    }
    fn finished_code(&self) -> u64 {
        match self {
            Self::Stride(p) => p.finished_code(),
            Self::Gather(p) => p.finished_code(),
            Self::Burst(p) => p.finished_code(),
        }
    }
    fn slot_bound(&self) -> Option<u64> {
        match self {
            Self::Stride(p) => p.slot_bound(),
            Self::Gather(p) => p.slot_bound(),
            Self::Burst(p) => p.slot_bound(),
        }
    }
    fn period_hint(&self) -> Option<u64> {
        match self {
            Self::Stride(p) => p.period_hint(),
            Self::Gather(p) => p.period_hint(),
            Self::Burst(p) => p.period_hint(),
        }
    }
    #[inline]
    fn burst(&self) -> u64 {
        match self {
            Self::Stride(p) => p.burst(),
            Self::Gather(p) => p.burst(),
            Self::Burst(p) => p.burst(),
        }
    }
    // vecmem-lint: hot-path
    #[inline]
    fn advance(&self, k: u64, prev: &Request) -> Request {
        match self {
            Self::Stride(p) => p.advance(k, prev),
            Self::Gather(p) => p.advance(k, prev),
            Self::Burst(p) => p.advance(k, prev),
        }
    }
    #[inline]
    fn encode_slot_at(&self, k: u64, cooldown: u64, current: &Request) -> u64 {
        match self {
            Self::Stride(p) => p.encode_slot_at(k, cooldown, current),
            Self::Gather(p) => p.encode_slot_at(k, cooldown, current),
            Self::Burst(p) => p.encode_slot_at(k, cooldown, current),
        }
    }
}

/// Hashable, geometry-independent description of one port's pattern —
/// the vocabulary the CLI, the experiment cache keys and the differential
/// oracle share. [`PatternSpec::build`] instantiates it against a
/// configuration (banks and bank model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternSpec {
    /// Constant stride from `start_bank`.
    Stride {
        /// First bank accessed.
        start_bank: u64,
        /// Bank distance per element.
        distance: u64,
    },
    /// Indexed gather over `base .. base + span`.
    Gather {
        /// Base word address.
        base: u64,
        /// Index span.
        span: u64,
        /// Index generation.
        index: IndexPattern,
    },
    /// Strided multi-word burst.
    Burst {
        /// First bank accessed.
        start_bank: u64,
        /// Bank distance per grant.
        distance: u64,
        /// Words per grant.
        burst: u64,
    },
}

impl PatternSpec {
    /// Instantiates the spec against `config`'s geometry and bank model.
    #[must_use]
    pub fn build(&self, config: &SimConfig) -> AnyPattern {
        let geom = &config.geometry;
        let rows = match config.bank_model {
            BankModel::Uniform => 0,
            BankModel::Dram { rows, .. } => rows,
        };
        match *self {
            Self::Stride {
                start_bank,
                distance,
            } => AnyPattern::Stride(StridePattern::with_rows(
                geom,
                StreamSpec {
                    start_bank,
                    distance,
                },
                rows,
            )),
            Self::Gather { base, span, index } => {
                AnyPattern::Gather(GatherPattern::with_rows(geom, base, span, index, rows))
            }
            Self::Burst {
                start_bank,
                distance,
                burst,
            } => AnyPattern::Burst(BurstPattern::with_rows(
                geom,
                StreamSpec {
                    start_bank,
                    distance,
                },
                burst,
                rows,
            )),
        }
    }
}

/// How many elements a pattern port issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternLength {
    /// The port never finishes (the steady-state setting).
    Infinite,
    /// The port issues exactly this many elements, then writes its
    /// pattern's finished marker.
    Elements(u64),
}

/// One port of a [`PatternWorkload`]: a pattern plus issue progress.
#[derive(Debug, Clone)]
pub struct PatternPort<P> {
    pattern: P,
    length: PatternLength,
    start_cycle: u64,
    issued: u64,
    cooldown: u64,
    /// Cached `pattern.request_at(issued)` — the upcoming request, stepped
    /// forward via [`AccessPattern::advance`] on each grant so stalled
    /// cycles (which re-poll `pending`) never recompute the address.
    current: Request,
}

impl<P: AccessPattern> PatternPort<P> {
    /// An infinite port over `pattern`, starting at cycle 0.
    #[must_use]
    pub fn new(pattern: P) -> Self {
        let current = pattern.request_at(0);
        Self {
            pattern,
            length: PatternLength::Infinite,
            issued: 0,
            cooldown: 0,
            start_cycle: 0,
            current,
        }
    }

    /// Limits the port to `n` elements (builder style).
    #[must_use]
    pub fn with_length(mut self, n: u64) -> Self {
        self.length = PatternLength::Elements(n);
        self
    }

    /// Defers the port's first request to `cycle` (builder style).
    #[must_use]
    pub fn starting_at(mut self, cycle: u64) -> Self {
        self.start_cycle = cycle;
        self
    }

    fn done(&self) -> bool {
        match self.length {
            PatternLength::Infinite => false,
            PatternLength::Elements(n) => self.issued >= n,
        }
    }
}

/// The generic workload adapter: one [`AccessPattern`] per port, driven
/// through the shared step kernel. Implements [`Workload`] (with burst
/// cooldowns aged in [`Workload::tick`]) and [`ObservableWorkload`] (slot
/// per port, bound = max of the per-pattern bounds, periodic iff every
/// pattern has a period).
#[derive(Debug, Clone)]
pub struct PatternWorkload<P> {
    ports: Vec<PatternPort<P>>,
}

impl<P: AccessPattern> PatternWorkload<P> {
    /// A workload over the given ports; port `i` runs `ports[i]`.
    #[must_use]
    pub fn new(ports: Vec<PatternPort<P>>) -> Self {
        Self { ports }
    }

    /// Elements issued (granted) by port `p` so far.
    #[must_use]
    pub fn issued(&self, p: usize) -> u64 {
        self.ports[p].issued
    }

    /// Burst-idle periods remaining on port `p`.
    #[must_use]
    pub fn cooldown(&self, p: usize) -> u64 {
        self.ports[p].cooldown
    }

    /// The pattern driving port `p`.
    #[must_use]
    pub fn pattern(&self, p: usize) -> &P {
        &self.ports[p].pattern
    }
}

impl PatternWorkload<StridePattern> {
    /// Infinite constant-stride streams, one per spec — the canonical
    /// re-expression of the legacy stride workload (bitwise-identical
    /// packed state, hash and stats).
    #[must_use]
    pub fn strided(geom: &Geometry, specs: &[StreamSpec]) -> Self {
        Self::new(
            specs
                .iter()
                .map(|&spec| PatternPort::new(StridePattern::new(geom, spec)))
                .collect(), // vecmem-lint: allow(L2) -- one-time construction
        )
    }
}

impl PatternWorkload<AnyPattern> {
    /// Infinite mixed-pattern streams instantiated from specs against
    /// `config`'s geometry and bank model; port `i` runs `specs[i]`.
    #[must_use]
    pub fn from_specs(config: &SimConfig, specs: &[PatternSpec]) -> Self {
        Self::new(
            specs
                .iter()
                .map(|spec| PatternPort::new(spec.build(config)))
                .collect(), // vecmem-lint: allow(L2) -- one-time construction
        )
    }
}

impl<P: AccessPattern> Workload for PatternWorkload<P> {
    #[inline]
    fn pending(&self, port: PortId, now: u64) -> Option<Request> {
        let p = self.ports.get(port.0)?;
        if now < p.start_cycle || p.done() || p.cooldown > 0 {
            return None;
        }
        Some(p.current)
    }

    #[inline]
    fn granted(&mut self, port: PortId, _now: u64) {
        // vecmem-lint: allow(L7) -- port ids come from this workload's own config, always < ports
        let p = &mut self.ports[port.0];
        p.issued += 1;
        p.current = p.pattern.advance(p.issued, &p.current);
        p.cooldown = p.pattern.burst();
    }

    #[inline]
    fn tick(&mut self, _now: u64) {
        for p in &mut self.ports {
            p.cooldown = p.cooldown.saturating_sub(1);
        }
    }

    fn is_finished(&self) -> bool {
        self.ports.iter().all(PatternPort::done)
    }
}

impl<P: AccessPattern> ObservableWorkload for PatternWorkload<P> {
    fn signature_len(&self) -> usize {
        self.ports.len()
    }

    fn write_signature(&self, out: &mut [u64]) {
        for (slot, p) in out.iter_mut().zip(&self.ports) {
            *slot = if p.done() {
                p.pattern.finished_code()
            } else {
                p.pattern.encode_slot_at(p.issued, p.cooldown, &p.current)
            };
        }
    }

    fn signature_bound(&self) -> Option<u64> {
        self.ports
            .iter()
            .map(|p| p.pattern.slot_bound())
            .try_fold(0u64, |acc, b| b.map(|b| acc.max(b)))
    }

    fn periodic(&self) -> bool {
        self.ports.iter().all(|p| p.pattern.period_hint().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NoopObserver;
    use crate::state::SimState;
    use crate::steady::measure_steady_state_workload;
    use crate::step::step;
    use vecmem_analytic::Ratio;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(b: u64, d: u64) -> StreamSpec {
        StreamSpec {
            start_bank: b,
            distance: d,
        }
    }

    #[test]
    fn stride_pattern_walks_banks() {
        let p = StridePattern::new(&geom(8, 2), spec(3, 5));
        let banks: Vec<u64> = (0..6).map(|k| p.request_at(k).bank).collect();
        assert_eq!(banks, vec![3, 0, 5, 2, 7, 4]);
        assert_eq!(p.encode_slot(2, 0), 5);
        assert_eq!(p.finished_code(), 8);
        assert_eq!(p.slot_bound(), Some(8));
        assert_eq!(p.period_hint(), Some(8));
        assert_eq!(p.burst(), 1);
    }

    #[test]
    fn stride_pattern_rows_derive_from_word_address() {
        // m = 4, rows = 2: addr(k) = 1 + 3k; row = (addr / 4) mod 2.
        let p = StridePattern::with_rows(&geom(4, 2), spec(1, 3), 2);
        let rows: Vec<u64> = (0..5).map(|k| p.request_at(k).row).collect();
        assert_eq!(rows, vec![0, 1, 1, 0, 1]);
        // Slots are reduced positions, periodic with T = m·rows/gcd.
        assert_eq!(p.period_hint(), Some(8));
        assert_eq!(p.encode_slot(9, 0), 1);
        // The reduced position fully determines the request.
        for k in 0..32 {
            assert_eq!(p.request_at(k), p.request_at(k + 8), "k = {k}");
        }
    }

    #[test]
    fn incremental_advance_matches_request_at() {
        // The cached-request fast path must be indistinguishable from the
        // from-scratch computation, for every family, with and without
        // rows, including distances far above the bank count.
        let g = geom(12, 3);
        let patterns: Vec<AnyPattern> = vec![
            AnyPattern::Stride(StridePattern::new(&g, spec(5, 29))),
            AnyPattern::Stride(StridePattern::with_rows(&g, spec(1, 7), 4)),
            AnyPattern::Burst(BurstPattern::new(&g, spec(2, 31), 4)),
            AnyPattern::Burst(BurstPattern::with_rows(&g, spec(0, 5), 3, 2)),
            AnyPattern::Gather(GatherPattern::new(
                &g,
                3,
                40,
                IndexPattern::Affine { a: 9, c: 2 },
            )),
            AnyPattern::Gather(GatherPattern::new(
                &g,
                0,
                1 << 16,
                IndexPattern::PseudoRandom { seed: 4 },
            )),
        ];
        for p in &patterns {
            let mut current = p.request_at(0);
            for k in 1..200 {
                current = p.advance(k, &current);
                assert_eq!(current, p.request_at(k), "k = {k}, pattern {p:?}");
                let cooldown = k % p.burst();
                assert_eq!(
                    p.encode_slot_at(k, cooldown, &current),
                    p.encode_slot(k, cooldown),
                    "slot at k = {k}, pattern {p:?}"
                );
            }
        }
    }

    #[test]
    fn gather_affine_is_periodic_pseudo_random_is_not() {
        let g = geom(16, 4);
        let affine = GatherPattern::new(&g, 0, 12, IndexPattern::Affine { a: 2, c: 1 });
        assert_eq!(affine.period_hint(), Some(6));
        assert_eq!(affine.slot_bound(), Some(6));
        assert_eq!(affine.encode_slot(7, 0), 1);
        for k in 0..24 {
            assert_eq!(affine.request_at(k), affine.request_at(k + 6));
        }
        let random = GatherPattern::new(&g, 0, 1 << 20, IndexPattern::PseudoRandom { seed: 9 });
        assert_eq!(random.period_hint(), None);
        assert_eq!(random.slot_bound(), None);
        assert_eq!(random.encode_slot(41, 0), 41);
    }

    #[test]
    fn burst_slot_encodes_position_and_cooldown() {
        let p = BurstPattern::new(&geom(8, 2), spec(0, 1), 4);
        assert_eq!(p.burst(), 4);
        // T = 8, burst = 4: slot = (k mod 8)·4 + cooldown.
        assert_eq!(p.encode_slot(3, 2), 14);
        assert_eq!(p.decode_slot(14), (3, 2));
        assert_eq!(p.finished_code(), 32);
        assert_eq!(p.slot_bound(), Some(32));
    }

    #[test]
    fn burst_port_idles_between_grants() {
        // One port, burst 3, unit stride on 8 banks (nc = 1: no bank
        // conflicts): the port is granted every third cycle.
        let cfg = SimConfig::single_cpu(geom(8, 1), 1);
        let mut st = SimState::new(&cfg);
        let mut w = PatternWorkload::new(vec![PatternPort::new(BurstPattern::new(
            &geom(8, 1),
            spec(0, 1),
            3,
        ))]);
        let mut grants = Vec::new();
        for cycle in 0..9 {
            let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
            if ev.grants > 0 {
                grants.push(cycle);
            }
        }
        assert_eq!(grants, vec![0, 3, 6]);
        assert_eq!(w.issued(0), 3);
    }

    #[test]
    fn burst_steady_state_amortises_to_one_grant_per_burst() {
        // Burst B on a conflict-free unit stride: one grant every B
        // cycles, b_eff = 1/B grants per period (B words per grant).
        let g = geom(16, 4);
        let cfg = SimConfig::single_cpu(g, 1);
        for burst in [1u64, 2, 4] {
            let mut w = PatternWorkload::new(vec![PatternPort::new(BurstPattern::new(
                &g,
                spec(0, 1),
                burst,
            ))]);
            let ss = measure_steady_state_workload(&cfg, &mut w, 0, 100_000).unwrap();
            assert!(ss.exact);
            assert_eq!(ss.beff, Ratio::new(1, burst), "burst = {burst}");
        }
    }

    #[test]
    fn aperiodic_gather_gets_windowed_estimate() {
        let g = geom(16, 4);
        let cfg = SimConfig::single_cpu(g, 1);
        let mut w = PatternWorkload::new(vec![PatternPort::new(GatherPattern::new(
            &g,
            0,
            1 << 20,
            IndexPattern::PseudoRandom { seed: 42 },
        ))]);
        assert!(!w.periodic());
        let ss = measure_steady_state_workload(&cfg, &mut w, 0, 10_000_000).unwrap();
        assert!(!ss.exact);
        assert_eq!(ss.period, crate::steady::WINDOWED_FALLBACK_CYCLES);
        // Same regime as the classical single random port: between 1/n_c
        // and 1.
        assert!(ss.beff > Ratio::new(1, 2));
        assert!(ss.beff < Ratio::new(95, 100));
    }

    #[test]
    fn affine_gather_converges_exactly() {
        let g = geom(16, 4);
        let cfg = SimConfig::single_cpu(g, 1);
        // a = 1: degenerates to unit stride, full bandwidth, exact.
        let mut w = PatternWorkload::new(vec![PatternPort::new(GatherPattern::new(
            &g,
            0,
            1 << 10,
            IndexPattern::Affine { a: 1, c: 0 },
        ))]);
        let ss = measure_steady_state_workload(&cfg, &mut w, 0, 1_000_000).unwrap();
        assert!(ss.exact);
        assert_eq!(ss.beff, Ratio::integer(1));
    }

    #[test]
    fn dram_row_hits_shorten_holds() {
        // Distance 0: every access hits the same cell, so after the first
        // (miss, opens the row) every grant is an open-row hit. With hit
        // cycle 1 the bank never blocks; the uniform model stays bank
        // limited to 1/n_c.
        let g = geom(2, 4);
        let cfg = SimConfig::single_cpu(g, 1).with_bank_model(BankModel::Dram {
            hit_cycle: 1,
            rows: 4,
        });
        let specs = [PatternSpec::Stride {
            start_bank: 0,
            distance: 0,
        }];
        let mut w = PatternWorkload::from_specs(&cfg, &specs);
        let ss = measure_steady_state_workload(&cfg, &mut w, 0, 1_000_000).unwrap();
        assert!(ss.exact);
        assert_eq!(ss.beff, Ratio::integer(1));
        let uni_cfg = SimConfig::single_cpu(g, 1);
        let mut uw = PatternWorkload::from_specs(&uni_cfg, &specs);
        let uni = measure_steady_state_workload(&uni_cfg, &mut uw, 0, 1_000_000).unwrap();
        assert_eq!(uni.beff, Ratio::new(1, 4));
    }

    #[test]
    fn interleaved_unit_stride_never_row_hits() {
        // Word-interleaved addressing puts a bank's consecutive words in
        // consecutive rows (row = (addr/m) mod rows), so a unit stride
        // misses on every bank revisit: DRAM behaves exactly like the
        // uniform model here.
        let g = geom(2, 4);
        let specs = [PatternSpec::Stride {
            start_bank: 0,
            distance: 1,
        }];
        let dram_cfg = SimConfig::single_cpu(g, 1).with_bank_model(BankModel::Dram {
            hit_cycle: 1,
            rows: 4,
        });
        let mut dw = PatternWorkload::from_specs(&dram_cfg, &specs);
        let dram = measure_steady_state_workload(&dram_cfg, &mut dw, 0, 1_000_000).unwrap();
        let uni_cfg = SimConfig::single_cpu(g, 1);
        let mut uw = PatternWorkload::from_specs(&uni_cfg, &specs);
        let uni = measure_steady_state_workload(&uni_cfg, &mut uw, 0, 1_000_000).unwrap();
        assert_eq!(dram.beff, uni.beff);
        assert_eq!(dram.beff, Ratio::new(1, 2));
    }

    #[test]
    fn spec_build_respects_bank_model_rows() {
        let g = geom(8, 4);
        let uniform = SimConfig::single_cpu(g, 1);
        let dram = SimConfig::single_cpu(g, 1).with_bank_model(BankModel::Dram {
            hit_cycle: 2,
            rows: 4,
        });
        let spec = PatternSpec::Stride {
            start_bank: 0,
            distance: 1,
        };
        // Uniform: rows untracked, request.row always 0.
        let up = spec.build(&uniform);
        assert_eq!(up.request_at(9).row, 0);
        // DRAM: addr 9 → bank 1, row (9/8) % 4 = 1.
        let dp = spec.build(&dram);
        assert_eq!(dp.request_at(9).row, 1);
    }

    #[test]
    fn finite_ports_write_finished_markers() {
        let g = geom(8, 2);
        let cfg = SimConfig::single_cpu(g, 1);
        let mut w =
            PatternWorkload::new(vec![
                PatternPort::new(StridePattern::new(&g, spec(0, 1))).with_length(2)
            ]);
        let mut st = SimState::new(&cfg);
        step(&cfg, &mut st, &mut w, &mut NoopObserver);
        step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert!(w.is_finished());
        assert_eq!(w.state_signature(), vec![8]);
        assert_eq!(w.pending(PortId(0), 2), None);
        use crate::steady::ObservableWorkload as _;
        assert_eq!(w.signature_bound(), Some(8));
    }

    #[test]
    fn start_cycle_defers_first_request() {
        let g = geom(8, 2);
        let w = PatternWorkload::new(vec![
            PatternPort::new(StridePattern::new(&g, spec(2, 1))).starting_at(3)
        ]);
        assert_eq!(w.pending(PortId(0), 2), None);
        assert_eq!(w.pending(PortId(0), 3), Some(Request::to_bank(2)));
    }

    #[test]
    fn mixed_pattern_bound_is_max_and_none_dominates() {
        let g = geom(8, 2);
        let stride = AnyPattern::Stride(StridePattern::new(&g, spec(0, 1)));
        let random = AnyPattern::Gather(GatherPattern::new(
            &g,
            0,
            64,
            IndexPattern::PseudoRandom { seed: 1 },
        ));
        let affine = AnyPattern::Gather(GatherPattern::new(
            &g,
            0,
            64,
            IndexPattern::Affine { a: 1, c: 0 },
        ));
        let bounded =
            PatternWorkload::new(vec![PatternPort::new(stride), PatternPort::new(affine)]);
        assert_eq!(bounded.signature_bound(), Some(64));
        assert!(bounded.periodic());
        let unbounded =
            PatternWorkload::new(vec![PatternPort::new(stride), PatternPort::new(random)]);
        assert_eq!(unbounded.signature_bound(), None);
        assert!(!unbounded.periodic());
    }
}
