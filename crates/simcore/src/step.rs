//! The one step kernel: simulate a single clock period.
//!
//! vecmem-lint: alloc-free
//!
//! Everything that advances the memory model by one cycle — the engine,
//! the steady-state detector, the differential oracle — funnels through
//! [`step`]. The kernel owns the canonical event order of a clock period:
//!
//! 1. report the busy→free transitions queued by the previous cycle's
//!    aging pass;
//! 2. collect each port's pending request (ascending port order);
//! 3. observer: [`on_arbitration`](crate::observe::SimObserver::on_arbitration);
//! 4. arbitrate ([`arbitrate_into`]) against the current bank residues;
//! 5. delays, in input order: count the conflict, bump the port's wait
//!    counter, [`on_delay`](crate::observe::SimObserver::on_delay);
//! 6. record the per-port [`PortEvent`]s (input order) into
//!    [`SimState::outcomes`];
//! 7. grants, in input order: mark the bank busy — `n_c` periods under
//!    the uniform bank model; under the DRAM model `hit_cycle` on an
//!    open-row hit and `n_c` on a miss, which opens the accessed row —
//!    [`on_grant`](crate::observe::SimObserver::on_grant) and
//!    [`on_bank_busy`](crate::observe::SimObserver::on_bank_busy), reset
//!    the wait counter, advance the workload; then the workload's
//!    end-of-cycle [`tick`](crate::workload::Workload::tick), once,
//!    after all grants;
//! 8. observer: [`on_cycle_end`](crate::observe::SimObserver::on_cycle_end)
//!    with the grant count and the number of banks busy *during* the cycle;
//! 9. under cyclic priority, advance the rotation if the cycle was
//!    contested (a section or simultaneous-bank delay occurred);
//! 10. age every busy bank by one period and advance the clock.
//!
//! The kernel is allocation-free: scratch vectors live in the
//! [`SimState`] and are reused cycle after cycle.

use crate::arbiter::arbitrate_into;
use crate::config::{PriorityRule, SimConfig};
use crate::observe::SimObserver;
use crate::request::{ConflictKind, PortId, PortOutcome};
use crate::state::{PortEvent, SimState};
use crate::stats::ConflictCounts;
use crate::workload::Workload;

/// What one simulated clock period produced, in aggregate. Per-port detail
/// is available from [`SimState::outcomes`] until the next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleEvents {
    /// Requests granted this cycle.
    pub grants: u32,
    /// Delays recorded this cycle, by conflict kind.
    pub conflicts: ConflictCounts,
    /// Whether priority arbitration was exercised (a section or
    /// simultaneous-bank conflict occurred) — the condition under which
    /// cyclic priority rotates.
    pub contested: bool,
}

/// Simulates one clock period of `config`'s memory system.
///
/// Pure with respect to its inputs: the entire evolving state lives in
/// `state` (and in the workload, whose observable part the caller mirrors
/// into the state's position slots when it needs recurrence detection).
///
/// # Panics
/// If the workload presents a request for a bank outside the geometry.
// vecmem-lint: hot-path
pub fn step<W: Workload + ?Sized, O: SimObserver>(
    config: &SimConfig,
    state: &mut SimState,
    workload: &mut W,
    observer: &mut O,
) -> CycleEvents {
    let now = state.now();
    let banks = u64::from(state.banks());

    // 1. Busy→free transitions queued by the previous cycle's aging pass.
    if O::ENABLED {
        for &bank in &state.just_freed {
            observer.on_bank_busy(now, bank, false);
        }
    }

    // 2. Collect pending requests, ascending port order.
    let mut pending = std::mem::take(&mut state.pending);
    pending.clear();
    for p in 0..config.num_ports() {
        let port = PortId(p);
        if let Some(req) = workload.pending(port, now) {
            // vecmem-lint: allow(L7) -- the documented "# Panics" precondition: an out-of-geometry bank is a workload bug
            assert!(
                req.bank < banks,
                "workload requested bank {} of {banks}",
                req.bank
            );
            pending.push((port, req));
        }
    }

    // 3–4. Arbitrate.
    if O::ENABLED {
        observer.on_arbitration(now, state.rotation(), &pending);
    }
    let mut kinds = std::mem::take(&mut state.kinds);
    arbitrate_into(
        config,
        state.rotation(),
        |b| state.residue(b) > 0,
        &pending,
        &mut kinds,
    );

    // 5. Delays.
    let mut conflicts = ConflictCounts::default();
    let mut contested = false;
    for (i, &(port, req)) in pending.iter().enumerate() {
        // vecmem-lint: allow(L7) -- kinds was sized from pending by arbitrate_into this same cycle
        if let PortOutcome::Delayed(kind) = kinds[i] {
            conflicts.record(kind);
            contested |= kind != ConflictKind::Bank;
            state.bump_wait(port);
            if O::ENABLED {
                observer.on_delay(now, port, req.bank, kind);
            }
        }
    }

    // 6. Per-port events, input order. A delayed port reports its running
    // wait (including this cycle); a granted port its completed wait.
    let mut outcomes = std::mem::take(&mut state.outcomes);
    outcomes.clear();
    for (i, &(port, req)) in pending.iter().enumerate() {
        outcomes.push(PortEvent {
            port,
            request: req,
            // vecmem-lint: allow(L7) -- kinds was sized from pending by arbitrate_into this same cycle
            outcome: kinds[i],
            wait: state.wait(port),
        });
    }
    state.outcomes = outcomes;

    // 7. Grants. The hold time is the geometry's n_c under the uniform
    // bank model; the DRAM model charges only `hit_cycle` when the request
    // hits the bank's open row, and opens the accessed row otherwise.
    let mut grants = 0u32;
    let miss_hold = config.geometry.bank_cycle();
    for (i, &(port, req)) in pending.iter().enumerate() {
        // vecmem-lint: allow(L7) -- kinds was sized from pending by arbitrate_into this same cycle
        if kinds[i] == PortOutcome::Granted {
            grants += 1;
            let wait = state.wait(port);
            let hold = match config.bank_model {
                crate::config::BankModel::Uniform => miss_hold,
                crate::config::BankModel::Dram { hit_cycle, rows } => {
                    debug_assert!(req.row < rows, "row {} of {rows}", req.row);
                    let hit = state.open_row(req.bank) == Some(req.row);
                    state.set_open_row(req.bank, req.row);
                    if hit {
                        hit_cycle
                    } else {
                        miss_hold
                    }
                }
            };
            state.set_residue(req.bank, hold as u8);
            if O::ENABLED {
                observer.on_grant(now, port, req.bank, wait, hold);
                observer.on_bank_busy(now, req.bank, true);
            }
            state.reset_wait(port);
            workload.granted(port, now);
        }
    }

    // 7b. End-of-cycle workload aging (burst cooldowns and the like),
    // strictly after every grant of this period.
    workload.tick(now);

    // 8. End of cycle: banks busy *during* this period (grants included,
    // aging not yet applied).
    if O::ENABLED {
        observer.on_cycle_end(now, grants, state.busy_banks());
    }

    // 9. Cyclic priority rotates only when arbitration was exercised.
    if config.priority == PriorityRule::Cyclic && contested {
        let n = config.num_ports().max(1);
        state.set_rotation((state.rotation() + 1) % n);
    }

    // 10. Age the banks and advance the clock.
    state.decrement_residues();
    state.pending = pending;
    state.kinds = kinds;
    state.advance_now();

    // 11. Sanitizer: with the `sanitize` feature, debug builds check every
    // structural invariant after each cycle and abort at the first
    // violating one.
    #[cfg(feature = "sanitize")]
    if cfg!(debug_assertions) {
        if let Err(violation) = state.validate() {
            // vecmem-lint: allow(L3, L7) -- the sanitizer's whole job is to abort loudly at the violating cycle
            panic!("vecmem sanitize: cycle {now}: {violation}");
        }
    }

    CycleEvents {
        grants,
        conflicts,
        contested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NoopObserver;
    use crate::request::Request;
    use vecmem_analytic::Geometry;

    /// Every port requests a fixed bank forever.
    #[derive(Clone)]
    struct FixedBanks(Vec<u64>);

    impl Workload for FixedBanks {
        fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
            self.0.get(port.0).map(|&bank| Request::to_bank(bank))
        }
        fn granted(&mut self, _port: PortId, _now: u64) {}
        fn is_finished(&self) -> bool {
            false
        }
    }

    #[test]
    fn single_stream_holds_bank_for_bank_cycle() {
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(8, 3).unwrap(), 1);
        let mut st = SimState::new(&cfg);
        let mut w = FixedBanks(vec![2]);
        // Cycle 0: grant, bank 2 held for nc = 3 → residue 2 after aging.
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert_eq!(ev.grants, 1);
        assert_eq!(st.residue(2), 2);
        assert_eq!(st.outcomes().len(), 1);
        assert_eq!(st.outcomes()[0].outcome, PortOutcome::Granted);
        // Cycles 1–2: bank conflict against its own residue.
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert_eq!(ev.grants, 0);
        assert_eq!(ev.conflicts.bank, 1);
        assert_eq!(st.outcomes()[0].wait, 1);
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert_eq!(ev.conflicts.bank, 1);
        // Cycle 3: free again, granted with completed wait 2.
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert_eq!(ev.grants, 1);
        assert_eq!(st.outcomes()[0].wait, 2);
        assert_eq!(st.wait(PortId(0)), 0);
        assert_eq!(st.now(), 4);
    }

    #[test]
    fn contested_cycle_rotates_cyclic_priority() {
        let cfg = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2)
            .with_priority(PriorityRule::Cyclic);
        let mut st = SimState::new(&cfg);
        let mut w = FixedBanks(vec![4, 4]);
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert!(ev.contested);
        assert_eq!(ev.conflicts.simultaneous, 1);
        assert_eq!(st.rotation(), 1);
        // Pure bank conflicts do not rotate.
        let ev = step(&cfg, &mut st, &mut w, &mut NoopObserver);
        assert!(!ev.contested);
        assert_eq!(ev.conflicts.bank, 2);
        assert_eq!(st.rotation(), 1);
    }

    #[test]
    fn hash_stays_consistent_across_steps() {
        let cfg = SimConfig::one_port_per_cpu(Geometry::unsectioned(13, 4).unwrap(), 2);
        let mut st = SimState::new(&cfg);
        let mut w = FixedBanks(vec![3, 3]);
        for _ in 0..25 {
            step(&cfg, &mut st, &mut w, &mut NoopObserver);
            assert_eq!(st.hash(), st.recompute_hash());
        }
    }

    #[test]
    #[should_panic(expected = "requested bank")]
    fn out_of_range_bank_rejected() {
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(4, 2).unwrap(), 1);
        let mut st = SimState::new(&cfg);
        let mut w = FixedBanks(vec![9]);
        step(&cfg, &mut st, &mut w, &mut NoopObserver);
    }
}
