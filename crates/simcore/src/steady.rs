//! Exact steady-state (cyclic state) effective bandwidth, in bounded
//! memory.
//!
//! Paper §III, assumption 1: "the possible memory states are finite, and
//! some cyclic state will be reached. Neglecting startup times, we compute
//! the effective bandwidth for the cyclic state." The solver realises this
//! literally: the full simulator state — remaining bank busy times, each
//! stream's reduced position, and the priority rotation — is a [`SimState`]
//! core, and as soon as a core recurs, the bandwidth over one period of the
//! cycle is exact and final.
//!
//! Recurrence is found with a multi-anchor variant of **Brent's
//! cycle-finding algorithm** over the state's incrementally maintained
//! hash:
//!
//! * the searching cursor keeps snapshots of itself at every power-of-two
//!   step count and compares each new state against *all* of them (a scan
//!   of one `u64` hash per snapshot). The first match is provably exactly
//!   one period `λ` behind the cursor: had the distance been `k·λ` with
//!   `k ≥ 2`, the same snapshot would already have matched `λ` steps
//!   earlier. This finds `λ` in `μ' + λ` steps, where `μ'` is the first
//!   power of two ≥ the transient length `μ`;
//! * every cursor carries cumulative per-port grant and conflict
//!   counters, so the difference between the cursor and the matched
//!   snapshot is one full period of window statistics — period sums are
//!   phase-independent, so no replay pass is needed;
//! * the exact transient `μ` comes from walking two cursors `λ` apart
//!   until they meet. When the match was against the start snapshot the
//!   transient is zero and this phase is skipped entirely; otherwise the
//!   leading cursor starts from the latest snapshot at or before `λ`, so
//!   the pre-advance costs at most `λ/2` steps.
//!
//! Equality is checked hash-first (one `u64` compare per cycle per
//! snapshot) and confirmed on the full core, so a hash collision can never
//! produce a wrong answer — only a skipped candidate. Memory use is
//! O(state · log transient): one snapshot per power of two, independent of
//! how many cycles the transient takes, where the previous detector kept a
//! hash map entry (state key + per-port grant vector) for *every*
//! simulated cycle.

use crate::config::SimConfig;
use crate::observe::NoopObserver;
use crate::request::PortOutcome;
use crate::state::SimState;
use crate::stats::ConflictCounts;
use crate::step::step;
use crate::workload::Workload;
use vecmem_analytic::Ratio;

/// Measured cyclic state of a set of infinite streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteadyState {
    /// Exact effective bandwidth `b_eff` (grants per clock period over one
    /// period of the cyclic state).
    pub beff: Ratio,
    /// Clock periods before the cyclic state is first entered.
    pub transient: u64,
    /// Length of the cycle in clock periods.
    pub period: u64,
    /// Total grants within one period.
    pub grants_per_period: u64,
    /// Per-port exact bandwidth within the cycle.
    pub per_port: Vec<Ratio>,
    /// Conflicts per period, by kind.
    pub conflicts_per_period: ConflictCounts,
    /// `true` when the figures come from an exact recurrence of the state
    /// core (the normal case); `false` when the workload declared itself
    /// aperiodic and the figures are a windowed estimate over `period`
    /// cycles instead (see [`WINDOWED_FALLBACK_CYCLES`]).
    pub exact: bool,
}

impl SteadyState {
    /// True when no conflicts occur in the cyclic state (i.e. the streams
    /// run at full bandwidth forever once synchronised).
    #[must_use]
    pub fn conflict_free(&self) -> bool {
        self.conflicts_per_period.total() == 0
    }
}

/// Error from the steady-state measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteadyStateError {
    /// No cyclic state found within the cycle budget (should not happen for
    /// valid stream workloads; the state space is finite).
    NotConverged {
        /// The exhausted cycle budget (the `max_cycles` the caller allowed
        /// for the search, not counting warmup).
        cycles: u64,
    },
}

impl std::fmt::Display for SteadyStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotConverged { cycles } => {
                write!(f, "no cyclic state within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SteadyStateError {}

/// A workload whose full dynamic state can be summarised for cyclic-state
/// detection. The signature, together with the bank residues and priority
/// rotation, must determine all future behaviour.
pub trait ObservableWorkload: Workload {
    /// Number of `u64` slots the signature occupies. Must be constant over
    /// the workload's lifetime.
    fn signature_len(&self) -> usize;

    /// Writes the current signature into `out`, which has exactly
    /// [`signature_len`](Self::signature_len) slots.
    fn write_signature(&self, out: &mut [u64]);

    /// Compact encoding of the workload state, as an owned vector.
    fn state_signature(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.signature_len()];
        self.write_signature(&mut out);
        out
    }

    /// Inclusive upper bound every signature slot stays within, when the
    /// workload knows one; `None` (the default) declares the signature
    /// unbounded and disables all bound checking.
    ///
    /// # Contract
    ///
    /// * The bound is **inclusive** and applies to **every** slot the
    ///   workload writes through [`write_signature`](Self::write_signature)
    ///   — including any end-of-stream marker values (the stride streams,
    ///   for example, write the bank count `m` for a finished port, so
    ///   their bound is `m`, not `m − 1`).
    /// * It must hold for the **initial** signature as well as after every
    ///   cycle: the steady-state cursor validates the freshly constructed
    ///   state once at construction (panicking on a violation, naming the
    ///   offending slot), and the `sanitize` feature re-checks after every
    ///   cycle via [`SimState::validate`], which reports an out-of-bound
    ///   slot as the named
    ///   [`InvariantViolation::PositionOutOfRange`](crate::state::InvariantViolation::PositionOutOfRange)
    ///   instead of a generic assert.
    /// * It must be constant over the workload's lifetime (it is wired
    ///   into the state once, via [`SimState::set_slot_bound`]).
    fn signature_bound(&self) -> Option<u64> {
        None
    }

    /// Whether the workload's request sequences are (eventually) periodic
    /// in the granted-request count — the premise of cyclic-state
    /// recurrence. The default is `true`, which is correct for every
    /// finite-state workload. A workload that knows its addresses never
    /// recur (e.g. a pseudo-random gather whose signature is the raw issue
    /// count) returns `false`, and the steady-state solver answers with a
    /// budgeted windowed estimate instead of spinning the full cycle
    /// budget into [`SteadyStateError::NotConverged`].
    fn periodic(&self) -> bool {
        true
    }
}

impl<W: ObservableWorkload + ?Sized> ObservableWorkload for &mut W {
    fn signature_len(&self) -> usize {
        (**self).signature_len()
    }
    fn write_signature(&self, out: &mut [u64]) {
        (**self).write_signature(out);
    }
    fn signature_bound(&self) -> Option<u64> {
        (**self).signature_bound()
    }
    fn periodic(&self) -> bool {
        (**self).periodic()
    }
}

impl<W: Workload + ?Sized> Workload for &mut W {
    fn pending(&self, port: crate::request::PortId, now: u64) -> Option<crate::request::Request> {
        (**self).pending(port, now)
    }
    fn granted(&mut self, port: crate::request::PortId, now: u64) {
        (**self).granted(port, now);
    }
    fn tick(&mut self, now: u64) {
        (**self).tick(now);
    }
    fn is_finished(&self) -> bool {
        (**self).is_finished()
    }
}

/// One deterministic replayable trajectory: a state plus the workload
/// driving it, with the workload's signature mirrored into the state's
/// position slots after every step so the state core alone decides
/// recurrence. The cursor also carries cumulative per-port grant and
/// conflict counters so any two points on the same trajectory define a
/// window of statistics by subtraction.
struct Cursor<'c, W> {
    config: &'c SimConfig,
    state: SimState,
    workload: W,
    sig_buf: Vec<u64>,
    per_port: Vec<u64>,
    conflicts: ConflictCounts,
}

/// A saved cursor position: the trajectory step count (post-warmup), the
/// state, the workload, and the cumulative counters at that point.
struct Snapshot<W> {
    pos: u64,
    state: SimState,
    workload: W,
    per_port: Vec<u64>,
    conflicts: ConflictCounts,
}

impl<'c, W: ObservableWorkload + Clone> Cursor<'c, W> {
    fn new(config: &'c SimConfig, workload: W) -> Self {
        let sig_len = workload.signature_len();
        let mut cursor = Self {
            config,
            state: SimState::with_signature_slots(config, sig_len),
            workload,
            sig_buf: vec![0u64; sig_len],
            per_port: vec![0u64; config.num_ports()],
            conflicts: ConflictCounts::default(),
        };
        let bound = cursor.workload.signature_bound();
        cursor.state.set_slot_bound(bound);
        cursor.sync();
        // Construction-time contract check: the initial signature must
        // already satisfy the declared bound (see
        // `ObservableWorkload::signature_bound`).
        if let Err(violation) = cursor.state.validate() {
            // vecmem-lint: allow(L3) -- contract violation at construction must abort loudly
            panic!("workload signature invalid at construction: {violation}");
        }
        cursor
    }

    fn sync(&mut self) {
        self.workload.write_signature(&mut self.sig_buf);
        self.state.sync_signature(&self.sig_buf);
    }

    fn advance(&mut self) {
        step(
            self.config,
            &mut self.state,
            &mut self.workload,
            &mut NoopObserver,
        );
        self.sync();
        for ev in &self.state.outcomes {
            match ev.outcome {
                // vecmem-lint: allow(L7) -- port ids come from the kernel's own config, always < ports
                PortOutcome::Granted => self.per_port[ev.port.0] += 1,
                PortOutcome::Delayed(kind) => self.conflicts.record(kind),
            }
        }
    }

    fn advance_by(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.advance();
        }
    }

    fn snapshot(&self, pos: u64) -> Snapshot<W> {
        Snapshot {
            pos,
            state: self.state.clone(),
            workload: self.workload.clone(),
            per_port: self.per_port.clone(),
            conflicts: self.conflicts,
        }
    }

    fn restore(config: &'c SimConfig, snap: &Snapshot<W>) -> Self {
        let sig_len = snap.workload.signature_len();
        Self {
            config,
            state: snap.state.clone(),
            workload: snap.workload.clone(),
            sig_buf: vec![0u64; sig_len],
            per_port: snap.per_port.clone(),
            conflicts: snap.conflicts,
        }
    }
}

/// Runs any observable workload until the simulator state recurs and
/// returns the exact cyclic-state bandwidth. `warmup` cycles are simulated
/// first (use this to get past start-time offsets that are not part of the
/// state signature); `max_cycles` bounds the post-warmup search.
///
/// The caller's workload is read (and cloned) but left untouched; the
/// search replays pristine clones internally.
///
/// # Errors
/// Returns [`SteadyStateError::NotConverged`] when the simulator state does
/// not recur within `max_cycles` after warmup.
pub fn measure_steady_state_workload<W: ObservableWorkload + Clone>(
    config: &SimConfig,
    workload: &mut W,
    warmup: u64,
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    // Aperiodic workloads (per their own declaration) can never recur:
    // answer with a budgeted windowed estimate instead of burning the full
    // cycle budget on a search that must fail.
    if !workload.periodic() {
        return measure_windowed(config, workload, warmup, max_cycles);
    }
    let not_converged = SteadyStateError::NotConverged { cycles: max_cycles };

    // Search cursor: pristine workload advanced through warmup, then
    // stepped while racing against snapshots of its own past taken at
    // every power-of-two step count. The first recurrence is provably
    // exactly one period behind the cursor (a distance of k·λ with k ≥ 2
    // would have matched the same snapshot λ steps sooner).
    let mut hare = Cursor::new(config, workload.clone());
    hare.advance_by(warmup);
    let mut snaps: Vec<Snapshot<W>> = vec![hare.snapshot(0)];
    let mut snap_hashes: Vec<u64> = vec![hare.state.hash()];
    let mut pos: u64 = 0;
    let mut next_snap: u64 = 1;
    let (lambda, matched) = loop {
        if pos >= max_cycles {
            return Err(not_converged);
        }
        hare.advance();
        pos += 1;
        let h = hare.state.hash();
        let mut found = None;
        for (i, &sh) in snap_hashes.iter().enumerate() {
            if sh == h && snaps[i].state == hare.state {
                found = Some(i);
                break;
            }
        }
        if let Some(i) = found {
            break (pos - snaps[i].pos, i);
        }
        if pos == next_snap {
            snaps.push(hare.snapshot(pos));
            snap_hashes.push(h);
            next_snap *= 2;
        }
    };

    // One full period of window statistics, by subtraction: period sums
    // are phase-independent, so the window [matched.pos, pos) is as good
    // as [μ, μ+λ).
    let anchor = &snaps[matched];
    let per_port_grants: Vec<u64> = hare
        .per_port
        .iter()
        .zip(&anchor.per_port)
        .map(|(&a, &b)| a - b)
        .collect();
    let conflicts = hare.conflicts - anchor.conflicts;

    // Transient μ: the first post-warmup cycle whose state lies on the
    // cycle. A match against the start snapshot means the trajectory was
    // cyclic from the start; otherwise two cursors λ apart meet exactly at
    // μ, with the leading cursor restored from the latest snapshot at or
    // before λ (the snapshot at step 1 always exists here, since a match
    // at pos 1 can only be against the start snapshot).
    let mu = if anchor.pos == 0 {
        0
    } else {
        let near = snaps
            .iter()
            .rev()
            .find(|s| s.pos <= lambda)
            .expect("start snapshot is at pos 0");
        let mut ahead = Cursor::restore(config, near);
        ahead.advance_by(lambda - near.pos);
        let mut behind = Cursor::restore(config, &snaps[0]);
        let mut mu: u64 = 0;
        while !(ahead.state.hash() == behind.state.hash() && ahead.state == behind.state) {
            ahead.advance();
            behind.advance();
            mu += 1;
        }
        mu
    };

    let grants_per_period: u64 = per_port_grants.iter().sum();
    Ok(SteadyState {
        beff: Ratio::new(grants_per_period, lambda),
        transient: warmup + mu,
        period: lambda,
        grants_per_period,
        per_port: per_port_grants
            .iter()
            .map(|&g| Ratio::new(g, lambda))
            .collect(),
        conflicts_per_period: conflicts,
        exact: true,
    })
}

/// Cycle budget of the windowed estimate used for self-declared aperiodic
/// workloads: the measurement window is `min(max_cycles, this)` cycles
/// after warmup.
pub const WINDOWED_FALLBACK_CYCLES: u64 = 1 << 16;

/// Budgeted windowed estimate for workloads that declare themselves
/// aperiodic ([`ObservableWorkload::periodic`] = `false`): simulate
/// `warmup` cycles, then a window of `min(max_cycles,`
/// [`WINDOWED_FALLBACK_CYCLES`]`)` cycles, and report the window averages
/// with [`SteadyState::exact`] = `false`. No snapshots are kept — there is
/// nothing to recur against.
fn measure_windowed<W: ObservableWorkload + Clone>(
    config: &SimConfig,
    workload: &mut W,
    warmup: u64,
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    let window = max_cycles.min(WINDOWED_FALLBACK_CYCLES);
    if window == 0 {
        return Err(SteadyStateError::NotConverged { cycles: max_cycles });
    }
    let mut cursor = Cursor::new(config, workload.clone());
    cursor.advance_by(warmup);
    let base_per_port = cursor.per_port.clone();
    let base_conflicts = cursor.conflicts;
    cursor.advance_by(window);
    let per_port_grants: Vec<u64> = cursor
        .per_port
        .iter()
        .zip(&base_per_port)
        .map(|(&a, &b)| a - b)
        .collect();
    let grants_per_period: u64 = per_port_grants.iter().sum();
    Ok(SteadyState {
        beff: Ratio::new(grants_per_period, window),
        transient: warmup,
        period: window,
        grants_per_period,
        per_port: per_port_grants
            .iter()
            .map(|&g| Ratio::new(g, window))
            .collect(),
        conflicts_per_period: cursor.conflicts - base_conflicts,
        exact: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{PortId, Request};
    use vecmem_analytic::Geometry;

    /// Port p cycles through banks `p, p + d, p + 2d, …` (mod m).
    #[derive(Clone)]
    struct Strides {
        m: u64,
        d: Vec<u64>,
        pos: Vec<u64>,
    }

    impl Strides {
        fn new(m: u64, d: &[u64]) -> Self {
            Self {
                m,
                d: d.to_vec(),
                pos: (0..d.len() as u64).collect(),
            }
        }
    }

    impl Workload for Strides {
        fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
            self.pos.get(port.0).map(|&bank| Request::to_bank(bank))
        }
        fn granted(&mut self, port: PortId, _now: u64) {
            self.pos[port.0] = (self.pos[port.0] + self.d[port.0]) % self.m;
        }
        fn is_finished(&self) -> bool {
            false
        }
    }

    impl ObservableWorkload for Strides {
        fn signature_len(&self) -> usize {
            self.pos.len()
        }
        fn write_signature(&self, out: &mut [u64]) {
            out.copy_from_slice(&self.pos);
        }
    }

    #[test]
    fn unit_stride_single_stream_full_bandwidth() {
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(16, 4).unwrap(), 1);
        let mut w = Strides::new(16, &[1]);
        let ss = measure_steady_state_workload(&cfg, &mut w, 0, 10_000).unwrap();
        assert_eq!(ss.beff, Ratio::integer(1));
        assert!(ss.conflict_free());
        assert_eq!(ss.grants_per_period, ss.period);
    }

    #[test]
    fn self_conflicting_stream_quarter_bandwidth() {
        // d = 0: one bank hammered forever, b_eff = 1 / n_c.
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(8, 4).unwrap(), 1);
        let mut w = Strides::new(8, &[0]);
        let ss = measure_steady_state_workload(&cfg, &mut w, 0, 10_000).unwrap();
        assert_eq!(ss.beff, Ratio::new(1, 4));
        assert_eq!(ss.period, 4);
        assert_eq!(ss.conflicts_per_period.bank, 3);
    }

    #[test]
    fn budget_exhaustion_reports_the_budget() {
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(16, 4).unwrap(), 1);
        let mut w = Strides::new(16, &[1]);
        // The 16-bank unit stride needs more than 3 search cycles.
        let err = measure_steady_state_workload(&cfg, &mut w, 0, 3).unwrap_err();
        assert_eq!(err, SteadyStateError::NotConverged { cycles: 3 });
        assert_eq!(err.to_string(), "no cyclic state within 3 cycles");
        // Warmup does not inflate the reported budget.
        let err = measure_steady_state_workload(&cfg, &mut w, 100, 3).unwrap_err();
        assert_eq!(err, SteadyStateError::NotConverged { cycles: 3 });
    }

    #[test]
    fn caller_workload_left_untouched() {
        let cfg = SimConfig::single_cpu(Geometry::unsectioned(8, 2).unwrap(), 1);
        let mut w = Strides::new(8, &[3]);
        let before = w.state_signature();
        let _ = measure_steady_state_workload(&cfg, &mut w, 0, 10_000).unwrap();
        assert_eq!(w.state_signature(), before);
    }
}
