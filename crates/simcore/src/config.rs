//! Simulator configuration: geometry, port topology and the priority rule.

use crate::request::{CpuId, PortId};
use vecmem_analytic::Geometry;

/// How conflicts between competing ports are resolved.
///
/// The paper discusses both a *fixed* priority rule (which can trap two
/// streams in a linked conflict, Fig. 8a) and a *cyclic* rule that rotates
/// the top priority every clock period and thereby resolves linked
/// conflicts (Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityRule {
    /// Lower port id always wins.
    #[default]
    Fixed,
    /// Round-robin: the port holding top priority advances by one every
    /// clock period.
    Cyclic,
}

/// How long a granted bank stays busy.
///
/// The paper's model charges every access the full bank cycle time `n_c`
/// ([`BankModel::Uniform`]). The DRAM-flavoured variant keeps the same
/// arbitration but makes the hold time asymmetric: an access that hits the
/// bank's open row costs only `hit_cycle` periods, while a row miss pays
/// the full `n_c` and leaves its own row open (a minimal open-page policy).
/// Which case applies is decided inside the step kernel from the
/// per-bank open-row state carried in the packed
/// [`SimState`](crate::state::SimState) core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankModel {
    /// Every grant holds the bank for the geometry's full `n_c`.
    #[default]
    Uniform,
    /// Row-buffer asymmetry: `hit_cycle` periods on an open-row hit, the
    /// geometry's `n_c` on a miss (which then opens the accessed row).
    Dram {
        /// Hold time of an open-row hit, in `1..=n_c`.
        hit_cycle: u64,
        /// Number of distinct rows tracked per bank (row addresses are
        /// reduced modulo `rows`, keeping the state space finite).
        rows: u64,
    },
}

/// Full static configuration of a simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Memory geometry (banks, sections, bank cycle time, section mapping).
    pub geometry: Geometry,
    /// `ports[i]` is the CPU that port `i` belongs to.
    pub ports: Vec<CpuId>,
    /// Conflict resolution rule.
    pub priority: PriorityRule,
    /// Bank timing model (uniform `n_c` vs DRAM row-buffer asymmetry).
    pub bank_model: BankModel,
}

impl SimConfig {
    /// Configuration with `n_ports` ports, all on one CPU.
    #[must_use]
    pub fn single_cpu(geometry: Geometry, n_ports: usize) -> Self {
        Self {
            geometry,
            ports: vec![CpuId(0); n_ports],
            priority: PriorityRule::Fixed,
            bank_model: BankModel::Uniform,
        }
    }

    /// Configuration with one port per CPU (every port has its own access
    /// paths — the §III-B "equal number of sections and banks" setting for
    /// any `s`, since paths are never a bottleneck across CPUs).
    #[must_use]
    pub fn one_port_per_cpu(geometry: Geometry, n_ports: usize) -> Self {
        Self {
            geometry,
            ports: (0..n_ports).map(CpuId).collect(),
            priority: PriorityRule::Fixed,
            bank_model: BankModel::Uniform,
        }
    }

    /// The Cray X-MP arrangement of the paper's §IV: two CPUs with three
    /// memory ports each on the 16-bank, 4-section, `n_c = 4` memory.
    #[must_use]
    pub fn cray_xmp_dual() -> Self {
        Self {
            geometry: Geometry::cray_xmp(),
            ports: vec![CpuId(0), CpuId(0), CpuId(0), CpuId(1), CpuId(1), CpuId(1)],
            priority: PriorityRule::Fixed,
            bank_model: BankModel::Uniform,
        }
    }

    /// Sets the priority rule (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityRule) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the bank timing model (builder style).
    ///
    /// # Panics
    /// For [`BankModel::Dram`], if `hit_cycle` is outside `1..=n_c` or
    /// `rows` is zero: a hit may never cost more than a miss, and at least
    /// one row per bank must exist.
    #[must_use]
    pub fn with_bank_model(mut self, bank_model: BankModel) -> Self {
        if let BankModel::Dram { hit_cycle, rows } = bank_model {
            assert!(
                hit_cycle >= 1 && hit_cycle <= self.geometry.bank_cycle(),
                "DRAM hit cycle {hit_cycle} outside 1..=n_c ({})",
                self.geometry.bank_cycle()
            );
            assert!(rows >= 1, "DRAM bank model needs at least one row");
        }
        self.bank_model = bank_model;
        self
    }

    /// Number of ports, i.e. the maximum bandwidth `b_w`.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Number of distinct CPUs.
    #[must_use]
    pub fn num_cpus(&self) -> usize {
        self.ports.iter().map(|c| c.0).max().map_or(0, |m| m + 1)
    }

    /// CPU of a port.
    #[must_use]
    // vecmem-lint: allow-fn(L7) -- a PortId is an index into this very table by construction
    pub fn cpu_of(&self, port: PortId) -> CpuId {
        self.ports[port.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_config() {
        let c = SimConfig::single_cpu(Geometry::unsectioned(8, 2).unwrap(), 3);
        assert_eq!(c.num_ports(), 3);
        assert_eq!(c.num_cpus(), 1);
        assert_eq!(c.cpu_of(PortId(2)), CpuId(0));
        assert_eq!(c.priority, PriorityRule::Fixed);
    }

    #[test]
    fn per_cpu_config() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        assert_eq!(c.num_cpus(), 2);
        assert_ne!(c.cpu_of(PortId(0)), c.cpu_of(PortId(1)));
    }

    #[test]
    fn xmp_dual_layout() {
        let c = SimConfig::cray_xmp_dual();
        assert_eq!(c.num_ports(), 6);
        assert_eq!(c.num_cpus(), 2);
        assert_eq!(c.cpu_of(PortId(0)), CpuId(0));
        assert_eq!(c.cpu_of(PortId(3)), CpuId(1));
        assert_eq!(c.geometry.banks(), 16);
        assert_eq!(c.geometry.sections(), 4);
    }

    #[test]
    fn builder_priority() {
        let c = SimConfig::cray_xmp_dual().with_priority(PriorityRule::Cyclic);
        assert_eq!(c.priority, PriorityRule::Cyclic);
    }

    #[test]
    fn builder_bank_model() {
        let c = SimConfig::cray_xmp_dual();
        assert_eq!(c.bank_model, BankModel::Uniform);
        let d = c.with_bank_model(BankModel::Dram {
            hit_cycle: 1,
            rows: 8,
        });
        assert_eq!(
            d.bank_model,
            BankModel::Dram {
                hit_cycle: 1,
                rows: 8,
            }
        );
    }

    #[test]
    #[should_panic(expected = "outside 1..=n_c")]
    fn dram_hit_cycle_bounded_by_nc() {
        // Cray X-MP geometry has n_c = 4; a hit costing 5 is rejected.
        let _ = SimConfig::cray_xmp_dual().with_bank_model(BankModel::Dram {
            hit_cycle: 5,
            rows: 8,
        });
    }
}
