//! Simulator configuration: geometry, port topology and the priority rule.

use crate::request::{CpuId, PortId};
use vecmem_analytic::Geometry;

/// How conflicts between competing ports are resolved.
///
/// The paper discusses both a *fixed* priority rule (which can trap two
/// streams in a linked conflict, Fig. 8a) and a *cyclic* rule that rotates
/// the top priority every clock period and thereby resolves linked
/// conflicts (Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityRule {
    /// Lower port id always wins.
    #[default]
    Fixed,
    /// Round-robin: the port holding top priority advances by one every
    /// clock period.
    Cyclic,
}

/// Full static configuration of a simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Memory geometry (banks, sections, bank cycle time, section mapping).
    pub geometry: Geometry,
    /// `ports[i]` is the CPU that port `i` belongs to.
    pub ports: Vec<CpuId>,
    /// Conflict resolution rule.
    pub priority: PriorityRule,
}

impl SimConfig {
    /// Configuration with `n_ports` ports, all on one CPU.
    #[must_use]
    pub fn single_cpu(geometry: Geometry, n_ports: usize) -> Self {
        Self {
            geometry,
            ports: vec![CpuId(0); n_ports],
            priority: PriorityRule::Fixed,
        }
    }

    /// Configuration with one port per CPU (every port has its own access
    /// paths — the §III-B "equal number of sections and banks" setting for
    /// any `s`, since paths are never a bottleneck across CPUs).
    #[must_use]
    pub fn one_port_per_cpu(geometry: Geometry, n_ports: usize) -> Self {
        Self {
            geometry,
            ports: (0..n_ports).map(CpuId).collect(),
            priority: PriorityRule::Fixed,
        }
    }

    /// The Cray X-MP arrangement of the paper's §IV: two CPUs with three
    /// memory ports each on the 16-bank, 4-section, `n_c = 4` memory.
    #[must_use]
    pub fn cray_xmp_dual() -> Self {
        Self {
            geometry: Geometry::cray_xmp(),
            ports: vec![CpuId(0), CpuId(0), CpuId(0), CpuId(1), CpuId(1), CpuId(1)],
            priority: PriorityRule::Fixed,
        }
    }

    /// Sets the priority rule (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityRule) -> Self {
        self.priority = priority;
        self
    }

    /// Number of ports, i.e. the maximum bandwidth `b_w`.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Number of distinct CPUs.
    #[must_use]
    pub fn num_cpus(&self) -> usize {
        self.ports.iter().map(|c| c.0).max().map_or(0, |m| m + 1)
    }

    /// CPU of a port.
    #[must_use]
    pub fn cpu_of(&self, port: PortId) -> CpuId {
        self.ports[port.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_config() {
        let c = SimConfig::single_cpu(Geometry::unsectioned(8, 2).unwrap(), 3);
        assert_eq!(c.num_ports(), 3);
        assert_eq!(c.num_cpus(), 1);
        assert_eq!(c.cpu_of(PortId(2)), CpuId(0));
        assert_eq!(c.priority, PriorityRule::Fixed);
    }

    #[test]
    fn per_cpu_config() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        assert_eq!(c.num_cpus(), 2);
        assert_ne!(c.cpu_of(PortId(0)), c.cpu_of(PortId(1)));
    }

    #[test]
    fn xmp_dual_layout() {
        let c = SimConfig::cray_xmp_dual();
        assert_eq!(c.num_ports(), 6);
        assert_eq!(c.num_cpus(), 2);
        assert_eq!(c.cpu_of(PortId(0)), CpuId(0));
        assert_eq!(c.cpu_of(PortId(3)), CpuId(1));
        assert_eq!(c.geometry.banks(), 16);
        assert_eq!(c.geometry.sections(), 4);
    }

    #[test]
    fn builder_priority() {
        let c = SimConfig::cray_xmp_dual().with_priority(PriorityRule::Cyclic);
        assert_eq!(c.priority, PriorityRule::Cyclic);
    }
}
