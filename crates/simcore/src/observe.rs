//! Zero-overhead observation hooks for the simulation engine.
//!
//! The [`step`](crate::step::step) kernel invokes a [`SimObserver`] at
//! every interesting point of a clock period: before arbitration, on every
//! grant and delay, on bank busy/free transitions, and at the end of the
//! cycle. The observer is a *generic* parameter, so the hook monomorphises
//! away entirely for the default [`NoopObserver`] — an unobserved step
//! compiles to exactly the code it would have without the hook (the no-op
//! callbacks inline to nothing and the `ENABLED`-gated bookkeeping folds
//! to dead code). Instrumentation therefore costs nothing unless a real
//! observer is attached.
//!
//! Rich observers (metrics registries, structured event logs, exporters)
//! live in the `vecmem-obs` crate; this module defines only the contract
//! the engine needs.

use crate::request::{ConflictKind, PortId, Request};

/// Callbacks invoked by the engine during an observed run.
///
/// All callbacks have empty default bodies: an observer implements only
/// what it needs. `cycle` is always the engine's current clock period.
///
/// Implementations that are pure sinks should leave [`ENABLED`] at `true`;
/// it exists so the no-op observer can turn off the small amount of
/// per-cycle bookkeeping (bank-transition scans, busy counts) that is done
/// *for* the callbacks rather than in them.
///
/// [`ENABLED`]: SimObserver::ENABLED
pub trait SimObserver {
    /// Whether the engine should compute observer-only data at all. The
    /// engine wraps its observation bookkeeping in `if O::ENABLED`, which
    /// the compiler removes when this is `false`.
    const ENABLED: bool = true;

    /// All pending requests of this clock period, before arbitration.
    /// `rotation` is the current cyclic-priority offset.
    fn on_arbitration(&mut self, cycle: u64, rotation: usize, requests: &[(PortId, Request)]) {
        let _ = (cycle, rotation, requests);
    }

    /// `port` was granted `bank`, after waiting `wait` delayed clock
    /// periods; the bank stays busy for `hold` periods (`n_c`).
    fn on_grant(&mut self, cycle: u64, port: PortId, bank: u64, wait: u64, hold: u64) {
        let _ = (cycle, port, bank, wait, hold);
    }

    /// `port`'s request for `bank` was delayed by a conflict of `kind`.
    fn on_delay(&mut self, cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        let _ = (cycle, port, bank, kind);
    }

    /// `bank` transitioned to busy (`busy = true`, at a grant) or back to
    /// free (`busy = false`, `n_c` periods later).
    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        let _ = (cycle, bank, busy);
    }

    /// The clock period is over: `grants` requests were granted this cycle
    /// and `busy_banks` banks are occupied during it.
    fn on_cycle_end(&mut self, cycle: u64, grants: u32, busy_banks: u32) {
        let _ = (cycle, grants, busy_banks);
    }
}

/// The default observer: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Mutable references observe on behalf of the referee, so call sites can
/// keep ownership of an observer across engine calls.
impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_arbitration(&mut self, cycle: u64, rotation: usize, requests: &[(PortId, Request)]) {
        (**self).on_arbitration(cycle, rotation, requests);
    }
    fn on_grant(&mut self, cycle: u64, port: PortId, bank: u64, wait: u64, hold: u64) {
        (**self).on_grant(cycle, port, bank, wait, hold);
    }
    fn on_delay(&mut self, cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        (**self).on_delay(cycle, port, bank, kind);
    }
    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        (**self).on_bank_busy(cycle, bank, busy);
    }
    fn on_cycle_end(&mut self, cycle: u64, grants: u32, busy_banks: u32) {
        (**self).on_cycle_end(cycle, grants, busy_banks);
    }
}

/// Fans one engine run out to two observers (nest for more). `ENABLED`
/// is the OR of the parts, and each part only sees events if it is itself
/// enabled, so `Tee<MetricsObserver, NoopObserver>` still skips the noop.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: SimObserver, B: SimObserver> SimObserver for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_arbitration(&mut self, cycle: u64, rotation: usize, requests: &[(PortId, Request)]) {
        if A::ENABLED {
            self.0.on_arbitration(cycle, rotation, requests);
        }
        if B::ENABLED {
            self.1.on_arbitration(cycle, rotation, requests);
        }
    }
    fn on_grant(&mut self, cycle: u64, port: PortId, bank: u64, wait: u64, hold: u64) {
        if A::ENABLED {
            self.0.on_grant(cycle, port, bank, wait, hold);
        }
        if B::ENABLED {
            self.1.on_grant(cycle, port, bank, wait, hold);
        }
    }
    fn on_delay(&mut self, cycle: u64, port: PortId, bank: u64, kind: ConflictKind) {
        if A::ENABLED {
            self.0.on_delay(cycle, port, bank, kind);
        }
        if B::ENABLED {
            self.1.on_delay(cycle, port, bank, kind);
        }
    }
    fn on_bank_busy(&mut self, cycle: u64, bank: u64, busy: bool) {
        if A::ENABLED {
            self.0.on_bank_busy(cycle, bank, busy);
        }
        if B::ENABLED {
            self.1.on_bank_busy(cycle, bank, busy);
        }
    }
    fn on_cycle_end(&mut self, cycle: u64, grants: u32, busy_banks: u32) {
        if A::ENABLED {
            self.0.on_cycle_end(cycle, grants, busy_banks);
        }
        if B::ENABLED {
            self.1.on_cycle_end(cycle, grants, busy_banks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        grants: u64,
        delays: u64,
        cycles: u64,
        busy_flips: u64,
        arbitrations: u64,
    }

    impl SimObserver for Counter {
        fn on_arbitration(&mut self, _: u64, _: usize, _: &[(PortId, Request)]) {
            self.arbitrations += 1;
        }
        fn on_grant(&mut self, _: u64, _: PortId, _: u64, _: u64, _: u64) {
            self.grants += 1;
        }
        fn on_delay(&mut self, _: u64, _: PortId, _: u64, _: ConflictKind) {
            self.delays += 1;
        }
        fn on_bank_busy(&mut self, _: u64, _: u64, _: bool) {
            self.busy_flips += 1;
        }
        fn on_cycle_end(&mut self, _: u64, _: u32, _: u32) {
            self.cycles += 1;
        }
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        const { assert!(Counter::ENABLED) };
        const { assert!(<Tee<Counter, NoopObserver>>::ENABLED) };
        const { assert!(!<Tee<NoopObserver, NoopObserver>>::ENABLED) };
    }

    #[test]
    fn tee_fans_out_and_refs_forward() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.on_grant(0, PortId(0), 3, 0, 4);
            tee.on_delay(1, PortId(1), 3, ConflictKind::Bank);
            tee.on_bank_busy(0, 3, true);
            tee.on_cycle_end(0, 1, 1);
            tee.on_arbitration(1, 0, &[]);
        }
        for c in [&a, &b] {
            assert_eq!(c.grants, 1);
            assert_eq!(c.delays, 1);
            assert_eq!(c.busy_flips, 1);
            assert_eq!(c.cycles, 1);
            assert_eq!(c.arbitrations, 1);
        }
    }
}
