//! Per-cycle conflict arbitration.
//!
//! vecmem-lint: alloc-free
//!
//! Implements the conflict taxonomy of paper §II in three phases:
//!
//! 1. **bank conflicts** — requests to still-active banks are delayed;
//! 2. **section conflicts** — among a CPU's remaining requests, only one per
//!    section can use that CPU's access path; the priority rule picks the
//!    winner (this also covers two same-CPU ports colliding on one inactive
//!    bank, which the paper treats as a section conflict);
//! 3. **simultaneous bank conflicts** — among the per-CPU winners, requests
//!    from different CPUs (hence different paths) colliding on one inactive
//!    bank are arbitrated by the same priority rule.

use crate::config::{PriorityRule, SimConfig};
use crate::request::{ConflictKind, PortId, PortOutcome, Request};

/// Priority rank of a port under `rule` with the given rotation offset;
/// lower rank wins.
#[must_use]
pub fn priority_rank(rule: PriorityRule, rotation: usize, n_ports: usize, port: PortId) -> usize {
    match rule {
        PriorityRule::Fixed => port.0,
        PriorityRule::Cyclic => (port.0 + n_ports - rotation % n_ports) % n_ports,
    }
}

/// Arbitrates one clock period without allocating: one outcome per request
/// is pushed into `outcomes` (which is cleared first), in input order.
///
/// `bank_busy(bank)` reports whether a bank is still active; `requests`
/// holds the pending request of every active port this cycle. The port
/// count is small (one to a few per CPU), so the phase-2/3 group scans are
/// plain O(p²) passes over the request slice — no sorting, no temporary
/// group tables.
// vecmem-lint: hot-path
// vecmem-lint: allow-fn(L7) -- every index walks `requests`/`outcomes`, which this function sized itself; the step kernel asserted the banks
pub fn arbitrate_into(
    config: &SimConfig,
    rotation: usize,
    bank_busy: impl Fn(u64) -> bool,
    requests: &[(PortId, Request)],
    outcomes: &mut Vec<PortOutcome>,
) {
    let n = config.num_ports();
    let rank = |p: PortId| priority_rank(config.priority, rotation, n, p);

    // Phase 1: bank conflicts. Everything else is tentatively granted.
    outcomes.clear();
    for &(_, req) in requests {
        outcomes.push(if bank_busy(req.bank) {
            PortOutcome::Delayed(ConflictKind::Bank)
        } else {
            PortOutcome::Granted
        });
    }

    // Phase 2: section conflicts within each CPU. A tentative grant loses
    // to any phase-1 survivor of the same (cpu, section) group with a
    // better rank. Requests already marked `Delayed(Section)` by this pass
    // still count as phase-1 survivors for later comparisons, so the scan
    // order does not matter.
    for i in 0..requests.len() {
        if outcomes[i] != PortOutcome::Granted {
            continue;
        }
        let (port, req) = requests[i];
        let cpu = config.cpu_of(port);
        let section = config.geometry.section_of(req.bank);
        let loses = requests.iter().enumerate().any(|(j, &(p, r))| {
            j != i
                && outcomes[j] != PortOutcome::Delayed(ConflictKind::Bank)
                && config.cpu_of(p) == cpu
                && config.geometry.section_of(r.bank) == section
                && rank(p) < rank(port)
        });
        if loses {
            outcomes[i] = PortOutcome::Delayed(ConflictKind::Section);
        }
    }

    // Phase 3: simultaneous bank conflicts across CPUs. A remaining grant
    // loses to any phase-2 survivor (granted, or already demoted to
    // `Delayed(SimultaneousBank)` by this pass) on the same bank with a
    // better rank.
    for i in 0..requests.len() {
        if outcomes[i] != PortOutcome::Granted {
            continue;
        }
        let (port, req) = requests[i];
        let loses = requests.iter().enumerate().any(|(j, &(p, r))| {
            j != i
                && matches!(
                    outcomes[j],
                    PortOutcome::Granted | PortOutcome::Delayed(ConflictKind::SimultaneousBank)
                )
                && r.bank == req.bank
                && rank(p) < rank(port)
        });
        if loses {
            outcomes[i] = PortOutcome::Delayed(ConflictKind::SimultaneousBank);
        }
    }
}

/// Arbitrates one clock period, returning a fresh outcome list.
///
/// Convenience wrapper over [`arbitrate_into`] for callers outside the hot
/// path; the step kernel uses the in-place form with a reused buffer.
#[must_use]
pub fn arbitrate(
    config: &SimConfig,
    rotation: usize,
    bank_busy: impl Fn(u64) -> bool,
    requests: &[(PortId, Request)],
) -> Vec<(PortId, Request, PortOutcome)> {
    // vecmem-lint: allow(L2) -- cold-path convenience wrapper; the hot loop calls arbitrate_into
    let mut outcomes = Vec::with_capacity(requests.len());
    arbitrate_into(config, rotation, bank_busy, requests, &mut outcomes);
    requests
        .iter()
        .zip(outcomes)
        .map(|(&(port, req), o)| (port, req, o))
        .collect() // vecmem-lint: allow(L2) -- cold-path convenience wrapper
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn req(port: usize, bank: u64) -> (PortId, Request) {
        (PortId(port), Request::to_bank(bank))
    }

    fn never_busy(_: u64) -> bool {
        false
    }

    #[test]
    fn no_conflicts_all_granted() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 5)]);
        assert!(out.iter().all(|&(_, _, o)| o == PortOutcome::Granted));
    }

    #[test]
    fn bank_conflict_on_busy_bank() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, |b| b == 3, &[req(0, 3), req(1, 5)]);
        assert_eq!(out[0].2, PortOutcome::Delayed(ConflictKind::Bank));
        assert_eq!(out[1].2, PortOutcome::Granted);
    }

    #[test]
    fn simultaneous_conflict_between_cpus() {
        // Two ports on different CPUs hit the same inactive bank: fixed
        // priority gives it to port 0.
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(
            out[1].2,
            PortOutcome::Delayed(ConflictKind::SimultaneousBank)
        );
    }

    #[test]
    fn same_cpu_same_bank_is_section_conflict() {
        // Paper §III-B: within one CPU there is a single path to the bank's
        // section, so the collision is classified as a section conflict.
        let c = SimConfig::single_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Section));
    }

    #[test]
    fn section_conflict_different_banks_same_path() {
        // m = 4, s = 2: banks 1 and 3 are both in section 1; two ports of one
        // CPU need the same path.
        let c = SimConfig::single_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Section));
    }

    #[test]
    fn different_cpus_never_section_conflict() {
        // Same section, different banks, different CPUs: each CPU has its
        // own path, both granted.
        let c = SimConfig::one_port_per_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 3)]);
        assert!(out.iter().all(|&(_, _, o)| o == PortOutcome::Granted));
    }

    #[test]
    fn cyclic_priority_rotates_winner() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2)
            .with_priority(PriorityRule::Cyclic);
        // rotation 0: port 0 wins.
        let out0 = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out0[0].2, PortOutcome::Granted);
        // rotation 1: port 1 holds top priority.
        let out1 = arbitrate(&c, 1, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out1[1].2, PortOutcome::Granted);
        assert_eq!(
            out1[0].2,
            PortOutcome::Delayed(ConflictKind::SimultaneousBank)
        );
    }

    #[test]
    fn three_way_section_conflict_single_winner() {
        let c = SimConfig::single_cpu(Geometry::new(8, 2, 2).unwrap(), 3);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 0), req(1, 2), req(2, 4)]);
        let granted = out
            .iter()
            .filter(|&&(_, _, o)| o == PortOutcome::Granted)
            .count();
        assert_eq!(granted, 1);
        assert_eq!(out[0].2, PortOutcome::Granted);
    }

    #[test]
    fn bank_conflict_checked_before_section() {
        // A port whose bank is busy must record a bank conflict even if it
        // would also have lost the path arbitration.
        let c = SimConfig::single_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, |b| b == 3, &[req(0, 1), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Bank));
    }

    #[test]
    fn arbitrate_into_reuses_buffer_across_cycles() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let mut buf = Vec::new();
        arbitrate_into(&c, 0, never_busy, &[req(0, 3), req(1, 3)], &mut buf);
        assert_eq!(
            buf,
            vec![
                PortOutcome::Granted,
                PortOutcome::Delayed(ConflictKind::SimultaneousBank)
            ]
        );
        arbitrate_into(&c, 0, |b| b == 1, &[req(0, 1)], &mut buf);
        assert_eq!(buf, vec![PortOutcome::Delayed(ConflictKind::Bank)]);
    }

    #[test]
    fn priority_rank_wrapping() {
        assert_eq!(priority_rank(PriorityRule::Fixed, 7, 4, PortId(2)), 2);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 0, 4, PortId(2)), 2);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 2, 4, PortId(2)), 0);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 3, 4, PortId(0)), 1);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 5, 4, PortId(1)), 0);
    }
}
