//! Requests, ports and the conflict taxonomy.

/// Identifier of a memory port (globally unique across CPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Identifier of a CPU. Ports of the same CPU share one access path per
/// section; ports of different CPUs have independent paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

/// A pending memory request: the bank the port wants this clock period.
///
/// Only the bank address matters for conflict behaviour (paper §II: "we are
/// only interested in the address j of the bank"); word addresses are
/// reduced by the caller. Under the DRAM-flavoured bank model
/// ([`BankModel::Dram`](crate::config::BankModel::Dram)) the request also
/// carries the bank-local `row` so the step kernel can decide between a
/// row-buffer hit and a miss; the uniform model ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Target bank address, in `0..m`.
    pub bank: u64,
    /// Bank-local row of the access, in `0..rows` of the configured
    /// [`BankModel`](crate::config::BankModel); `0` under the uniform
    /// model, which has no row state.
    pub row: u64,
}

impl Request {
    /// A request for `bank` with no row information (the uniform bank
    /// model's shape, and the legacy constructor for all stride streams).
    #[must_use]
    #[inline]
    pub fn to_bank(bank: u64) -> Self {
        Self { bank, row: 0 }
    }
}

/// The three conflict types of paper §II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// Access to a still-active bank: the request is postponed.
    Bank,
    /// Two or more ports on different access paths request the same inactive
    /// bank; the priority rule decides.
    SimultaneousBank,
    /// Two or more ports of one CPU need the same access path; the priority
    /// rule decides.
    Section,
}

/// Per-cycle outcome for a port that had a pending request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortOutcome {
    /// The request was granted; the port advances.
    Granted,
    /// The request was delayed by the given conflict. The port retries next
    /// clock period (and all its subsequent requests shift with it).
    Delayed(ConflictKind),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_compare() {
        assert!(PortId(0) < PortId(3));
        assert_eq!(CpuId(1), CpuId(1));
        assert_ne!(CpuId(0), CpuId(1));
    }

    #[test]
    fn outcome_matching() {
        let d = PortOutcome::Delayed(ConflictKind::Section);
        assert_ne!(d, PortOutcome::Granted);
        assert_eq!(d, PortOutcome::Delayed(ConflictKind::Section));
        assert_ne!(d, PortOutcome::Delayed(ConflictKind::Bank));
    }
}
