//! The packed simulator state: one contiguous buffer holding everything
//! that evolves from clock period to clock period.
//!
//! vecmem-lint: alloc-free
//!
//! Paper §III, assumption 1, rests on the memory state being *finite*; this
//! module makes that state an explicit, compact value instead of a bundle
//! of per-subsystem fields. A [`SimState`] packs, in a single `u64` buffer:
//!
//! * the priority **rotation** (word 0);
//! * per-bank busy **residues** — remaining busy clock periods, stored as
//!   one byte per bank (they are bounded by `n_c`, which must fit in a
//!   `u8`), eight banks per word;
//! * per-bank **open rows** — under the DRAM bank model
//!   ([`BankModel::Dram`](crate::config::BankModel::Dram)) only, one word
//!   per bank holding `row + 1` (`0` = closed). The uniform model packs
//!   zero open-row words, keeping its layout and hashes byte-identical to
//!   the pre-DRAM encoding;
//! * per-port workload **position slots** — the reduced stream positions a
//!   workload reports through
//!   [`ObservableWorkload`](crate::steady::ObservableWorkload);
//! * per-port **wait counters** — clock periods the head request has been
//!   delayed. Waits are accounting state: they never influence arbitration
//!   and can grow without bound under starvation, so they are excluded from
//!   both the hash and [`PartialEq`].
//!
//! The prefix up to the wait counters (rotation + residues + open rows +
//! positions) is the *core*: the part that determines all future behaviour. Equality of
//! cores is cyclic-state recurrence, and the detector in
//! [`crate::steady`] tracks it through an **incrementally maintained
//! 64-bit hash**: every mutation XORs out the old component and XORs in
//! the new one, so the hash after any number of steps equals the hash of a
//! freshly packed copy of the same state (see
//! [`SimState::recompute_hash`]) without ever re-hashing the whole buffer.

use crate::config::SimConfig;
use crate::request::{PortId, PortOutcome, Request};
use std::fmt::Write as _;

/// One port's view of one simulated clock period, in arbitration (input)
/// order. Produced by the [`step`](crate::step::step) kernel into
/// [`SimState::outcomes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortEvent {
    /// The port that had a pending request this cycle.
    pub port: PortId,
    /// The request it presented.
    pub request: Request,
    /// Grant or delay (with the conflict kind).
    pub outcome: PortOutcome,
    /// Clock periods the port's head request has waited: for a granted
    /// port the completed wait (what the histogram records), for a delayed
    /// port the running count including this cycle.
    pub wait: u64,
}

/// splitmix64 finalizer: a fast, well-mixing 64-bit permutation.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash contribution of one state component: `seed` names the component
/// family, `idx` the slot within it, `val` the current value. XOR-ing
/// contributions makes every update O(1): flip the old one out, the new
/// one in.
#[inline]
fn component(seed: u64, idx: u64, val: u64) -> u64 {
    mix64(mix64(seed ^ idx) ^ val)
}

const RES_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const POS_SEED: u64 = 0xc2b2_ae3d_27d4_eb4f;
const ROT_SEED: u64 = 0x1656_67b1_9e37_79f9;
const ROW_SEED: u64 = 0x2545_f491_4f6c_dd1d;

/// A violated [`SimState`] structural invariant, as found by
/// [`SimState::validate`].
///
/// These are the properties every reachable state satisfies by
/// construction; a violation means a kernel bug, a corrupted external
/// state lifted in through [`SimState::repack`], or (in the oracle's
/// seeded-fault tests) an injected bug doing its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A bank residue exceeds the bank cycle time `n_c`: no grant can make
    /// a bank busy for longer than one memory cycle.
    ResidueOverflow {
        /// The offending bank.
        bank: u64,
        /// Its stored residue.
        residue: u8,
        /// The maximum any reachable state can hold (`n_c`).
        max: u8,
    },
    /// The priority rotation is not a valid port index.
    RotationOutOfRange {
        /// The stored rotation.
        rotation: usize,
        /// Number of ports it must stay below.
        ports: u32,
    },
    /// A DRAM open-row word exceeds the bank model's row count: rows are
    /// reduced modulo `rows` before they are opened, so no reachable state
    /// can hold a larger one.
    OpenRowOutOfRange {
        /// The offending bank.
        bank: u64,
        /// Its stored open row.
        row: u64,
        /// The bank model's exclusive row bound.
        rows: u64,
    },
    /// A workload position slot exceeds the workload's declared bound.
    PositionOutOfRange {
        /// The offending slot.
        slot: usize,
        /// Its stored value.
        position: u64,
        /// The workload's inclusive bound.
        bound: u64,
    },
    /// The incrementally maintained hash diverged from a from-scratch
    /// recompute: some mutation bypassed the hashed accessors.
    HashMismatch {
        /// The incremental value ([`SimState::hash`]).
        incremental: u64,
        /// The from-scratch value ([`SimState::recompute_hash`]).
        recomputed: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::ResidueOverflow { bank, residue, max } => write!(
                f,
                "bank {bank} residue {residue} exceeds the bank cycle time {max}"
            ),
            Self::RotationOutOfRange { rotation, ports } => {
                write!(
                    f,
                    "rotation {rotation} is not a port index (ports = {ports})"
                )
            }
            Self::OpenRowOutOfRange { bank, row, rows } => write!(
                f,
                "bank {bank} open row {row} outside the bank model's 0..{rows}"
            ),
            Self::PositionOutOfRange {
                slot,
                position,
                bound,
            } => write!(
                f,
                "position slot {slot} holds {position}, above the workload bound {bound}"
            ),
            Self::HashMismatch {
                incremental,
                recomputed,
            } => write!(
                f,
                "incremental hash {incremental:#018x} != recomputed {recomputed:#018x}"
            ),
        }
    }
}

/// The packed dynamic state of one simulated memory system.
///
/// Construction fixes the dimensions (banks, ports, signature slots); all
/// per-cycle mutation goes through the [`step`](crate::step::step) kernel
/// and the position-sync methods. `PartialEq` compares the *core* only
/// (rotation, residues, positions) — wait counters and per-cycle scratch
/// are excluded, so two states compare equal exactly when their futures
/// coincide.
#[derive(Debug, Clone)]
pub struct SimState {
    /// Layout: `[rotation | residue words | open-row words | position
    /// slots | waits]`. The open-row region exists only under the DRAM
    /// bank model (one word per bank, `row + 1` with `0` = closed); under
    /// the uniform model it is zero words wide, so the layout — and every
    /// hash — is byte-identical to the pre-DRAM encoding.
    buf: Box<[u64]>,
    banks: u32,
    ports: u32,
    sig_len: u32,
    /// Number of `u64` words holding the packed residues.
    res_words: u32,
    /// Number of `u64` words holding per-bank open rows: `banks` under the
    /// DRAM bank model, `0` under the uniform model.
    row_words: u32,
    /// Exclusive bound on open-row values (the DRAM model's `rows`; `0`
    /// under the uniform model, where no open-row words exist).
    max_rows: u64,
    /// Largest residue any reachable state can hold: the geometry's bank
    /// cycle time `n_c`.
    max_residue: u8,
    /// Inclusive bound on workload position slots, when the workload
    /// declared one (see
    /// [`ObservableWorkload::signature_bound`](crate::steady::ObservableWorkload::signature_bound)).
    slot_bound: Option<u64>,
    now: u64,
    h_res: u64,
    h_rot: u64,
    h_pos: u64,
    h_row: u64,
    /// Per-port events of the last simulated cycle, in arbitration order.
    pub(crate) outcomes: Vec<PortEvent>,
    /// Scratch: pending requests collected at the start of a cycle.
    pub(crate) pending: Vec<(PortId, Request)>,
    /// Scratch: per-request outcomes parallel to `pending`.
    pub(crate) kinds: Vec<PortOutcome>,
    /// Banks whose busy interval expired at the end of the last cycle;
    /// their `busy = false` transition is reported at the start of the
    /// next one (matching the observer contract's timing).
    pub(crate) just_freed: Vec<u64>,
}

impl SimState {
    /// Fresh all-zero state with no workload signature slots (the engine
    /// wrapper's configuration: residues, rotation and waits only).
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_signature_slots(config, 0)
    }

    /// Fresh all-zero state with room for `sig_len` workload position
    /// slots in the hashed core.
    ///
    /// # Panics
    /// If the geometry's bank cycle time does not fit in the `u8` residue
    /// encoding.
    #[must_use]
    pub fn with_signature_slots(config: &SimConfig, sig_len: usize) -> Self {
        assert!(
            config.geometry.bank_cycle() <= u64::from(u8::MAX),
            "bank cycle time {} exceeds the u8 residue encoding",
            config.geometry.bank_cycle()
        );
        let banks = config.geometry.banks() as u32;
        let ports = config.num_ports() as u32;
        let res_words = banks.div_ceil(8);
        let (row_words, max_rows) = match config.bank_model {
            crate::config::BankModel::Uniform => (0, 0),
            crate::config::BankModel::Dram { rows, .. } => (banks, rows),
        };
        let words = 1 + res_words as usize + row_words as usize + sig_len + ports as usize;
        let mut state = Self {
            // vecmem-lint: allow(L2) -- one-time construction; the step kernel never re-allocates
            buf: vec![0u64; words].into_boxed_slice(),
            banks,
            ports,
            sig_len: sig_len as u32,
            res_words,
            row_words,
            max_rows,
            max_residue: config.geometry.bank_cycle() as u8,
            slot_bound: None,
            now: 0,
            h_res: 0,
            h_rot: 0,
            h_pos: 0,
            h_row: 0,
            outcomes: Vec::with_capacity(ports as usize), // vecmem-lint: allow(L2) -- one-time construction
            pending: Vec::with_capacity(ports as usize), // vecmem-lint: allow(L2) -- one-time construction
            kinds: Vec::with_capacity(ports as usize), // vecmem-lint: allow(L2) -- one-time construction
            just_freed: Vec::with_capacity(ports as usize), // vecmem-lint: allow(L2) -- one-time construction
        };
        let (r, o, p, w) = state.full_hash();
        state.h_res = r;
        state.h_rot = o;
        state.h_pos = p;
        state.h_row = w;
        state
    }

    /// Packs an externally held state (used by the differential oracle to
    /// lift the reference engine's state into the canonical form, so both
    /// sides of a lockstep comparison share one `PartialEq` and one dump
    /// format).
    ///
    /// # Panics
    /// If `residues` does not have one entry per bank.
    #[must_use]
    pub fn pack(config: &SimConfig, residues: &[u8], positions: &[u64], rotation: usize) -> Self {
        let mut state = Self::with_signature_slots(config, positions.len());
        state.repack(residues, positions, rotation);
        state
    }

    /// Re-packs an externally held state into this instance in place,
    /// touching (and re-hashing) only the components that changed. Lets a
    /// lockstep harness maintain one canonical copy across cycles instead
    /// of allocating a fresh state per comparison.
    ///
    /// # Panics
    /// If `residues` does not have one entry per bank or `positions` one
    /// entry per signature slot.
    pub fn repack(&mut self, residues: &[u8], positions: &[u64], rotation: usize) {
        assert_eq!(residues.len(), self.banks as usize, "one residue per bank");
        assert_eq!(
            positions.len(),
            self.sig_len as usize,
            "one position per signature slot"
        );
        for (bank, &r) in residues.iter().enumerate() {
            self.set_residue(bank as u64, r);
        }
        for (slot, &p) in positions.iter().enumerate() {
            self.set_position(slot, p);
        }
        self.set_rotation(rotation);
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Number of ports.
    #[must_use]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Number of workload position slots in the core.
    #[must_use]
    pub fn signature_slots(&self) -> usize {
        self.sig_len as usize
    }

    /// Clock periods simulated so far. Absolute time is not part of the
    /// core: a cyclic state recurs at different `now` values.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    pub(crate) fn advance_now(&mut self) {
        self.now += 1;
    }

    /// Current cyclic-priority rotation offset.
    #[must_use]
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn rotation(&self) -> usize {
        self.buf[0] as usize
    }

    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub(crate) fn set_rotation(&mut self, rotation: usize) {
        let old = self.buf[0];
        let new = rotation as u64;
        if old != new {
            self.h_rot ^= component(ROT_SEED, 0, old) ^ component(ROT_SEED, 0, new);
            self.buf[0] = new;
        }
    }

    // vecmem-lint: overflow-policy
    #[inline]
    fn res_word_index(bank: u64) -> (usize, u32) {
        // vecmem-lint: allow(L9) -- bank < banks <= 2^32 (validated geometry); word index and byte shift cannot overflow
        ((bank / 8) as usize + 1, (bank % 8) as u32 * 8)
    }

    /// Remaining busy clock periods of `bank` at the current clock period.
    #[must_use]
    #[inline]
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn residue(&self, bank: u64) -> u8 {
        let (w, shift) = Self::res_word_index(bank);
        (self.buf[w] >> shift) as u8
    }

    /// Sets the residue of `bank`, maintaining the incremental hash.
    // vecmem-lint: overflow-policy
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    #[inline]
    pub(crate) fn set_residue(&mut self, bank: u64, value: u8) {
        let (w, shift) = Self::res_word_index(bank);
        let old = self.buf[w];
        // vecmem-lint: allow(L9) -- shift = (bank % 8) * 8 < 64 by res_word_index construction
        let new = (old & !(0xFFu64 << shift)) | (u64::from(value) << shift);
        if old != new {
            let idx = (w - 1) as u64;
            self.h_res ^= component(RES_SEED, idx, old) ^ component(RES_SEED, idx, new);
            self.buf[w] = new;
        }
    }

    /// All residues as one byte per bank (the legacy signature format).
    #[must_use]
    pub fn residues_vec(&self) -> Vec<u8> {
        (0..u64::from(self.banks))
            .map(|b| self.residue(b))
            .collect() // vecmem-lint: allow(L2) -- legacy signature/diagnostic path, not called by step()
    }

    /// End-of-cycle aging: every nonzero residue decreases by one. Banks
    /// whose residue reaches zero are queued in `just_freed` so the next
    /// cycle can report their busy→free transition. Touches (and re-mixes)
    /// only words that actually change.
    // vecmem-lint: overflow-policy
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub(crate) fn decrement_residues(&mut self) {
        self.just_freed.clear();
        // SWAR: per byte, bit 7 of `nonzero` is set iff the byte is > 0.
        // `(b & 0x7F) + 0x7F` sets bit 7 iff the low seven bits are nonzero
        // (the carry stays inside the byte); OR-ing the original catches
        // 0x80 itself.
        const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
        const HI: u64 = 0x8080_8080_8080_8080;
        // vecmem-lint: allow-fn(L9) -- SWAR carries stay inside their byte (LO7 masks bit 7 off first) and w/byte index arithmetic is bounded by res_words * 8 = banks
        for w in 0..self.res_words as usize {
            let old = self.buf[w + 1];
            if old == 0 {
                continue;
            }
            let nonzero = (old | ((old & LO7) + LO7)) & HI;
            let new = old - (nonzero >> 7);
            let still = (new | ((new & LO7) + LO7)) & HI;
            let mut freed = nonzero & !still;
            while freed != 0 {
                let byte = freed.trailing_zeros() / 8;
                self.just_freed.push(w as u64 * 8 + u64::from(byte));
                freed &= freed - 1;
            }
            self.h_res ^= component(RES_SEED, w as u64, old) ^ component(RES_SEED, w as u64, new);
            self.buf[w + 1] = new;
        }
    }

    /// Number of banks busy at the current clock period.
    #[must_use]
    pub fn busy_banks(&self) -> u32 {
        (0..u64::from(self.banks))
            .filter(|&b| self.residue(b) > 0)
            .count() as u32
    }

    #[inline]
    fn row_base(&self) -> usize {
        1 + self.res_words as usize
    }

    #[inline]
    fn pos_base(&self) -> usize {
        self.row_base() + self.row_words as usize
    }

    /// The row currently open in `bank`'s row buffer, or `None` when the
    /// bank is cold (or the uniform model is active, which tracks no rows).
    #[must_use]
    #[inline]
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn open_row(&self, bank: u64) -> Option<u64> {
        if self.row_words == 0 {
            return None;
        }
        let word = self.buf[self.row_base() + bank as usize];
        (word != 0).then(|| word - 1)
    }

    /// Opens `row` in `bank`'s row buffer, maintaining the incremental
    /// hash. Only meaningful under the DRAM bank model.
    // vecmem-lint: overflow-policy
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    #[inline]
    pub(crate) fn set_open_row(&mut self, bank: u64, row: u64) {
        debug_assert!(self.row_words > 0, "uniform model has no open rows");
        // vecmem-lint: allow(L9) -- row_base + bank is bounded by the buffer length (validated geometry)
        let i = self.row_base() + bank as usize;
        let old = self.buf[i];
        // Packs `row + 1` so that 0 means "closed". A row of u64::MAX
        // would wrap to "closed"; rows come from Request::row, bounded by
        // the pattern's row count, which the config validates.
        let new = row.wrapping_add(1);
        if old != new {
            self.h_row ^= component(ROW_SEED, bank, old) ^ component(ROW_SEED, bank, new);
            self.buf[i] = new;
        }
    }

    /// Copies an externally held open-row vector (`None` = closed) into
    /// the open-row words — the DRAM analogue of [`Self::repack`], used by
    /// the differential oracle to lift the reference engine's row state.
    ///
    /// # Panics
    /// If `open` does not have one entry per bank, or the state was built
    /// for the uniform model (which has no open-row words).
    pub fn sync_open_rows(&mut self, open: &[Option<u64>]) {
        assert_eq!(open.len(), self.banks as usize, "one open row per bank");
        assert!(
            self.row_words == self.banks,
            "uniform-model state has no open-row words"
        );
        for (bank, &row) in open.iter().enumerate() {
            let i = self.row_base() + bank;
            let old = self.buf[i];
            let new = row.map_or(0, |r| r + 1);
            if old != new {
                let idx = bank as u64;
                self.h_row ^= component(ROW_SEED, idx, old) ^ component(ROW_SEED, idx, new);
                self.buf[i] = new;
            }
        }
    }

    #[inline]
    fn wait_base(&self) -> usize {
        self.pos_base() + self.sig_len as usize
    }

    /// Workload position slot `slot`.
    #[must_use]
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn position(&self, slot: usize) -> u64 {
        self.buf[self.pos_base() + slot]
    }

    /// Sets a workload position slot, maintaining the incremental hash.
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn set_position(&mut self, slot: usize, value: u64) {
        let i = self.pos_base() + slot;
        let old = self.buf[i];
        if old != value {
            self.h_pos ^=
                component(POS_SEED, slot as u64, old) ^ component(POS_SEED, slot as u64, value);
            self.buf[i] = value;
        }
    }

    /// Copies a freshly written workload signature into the position
    /// slots, updating the hash only for slots that changed.
    ///
    /// # Panics
    /// If `signature` does not have one entry per slot.
    // vecmem-lint: allow-fn(L7) -- the size assert is the documented contract; a mismatch is a harness bug
    pub fn sync_signature(&mut self, signature: &[u64]) {
        assert_eq!(signature.len(), self.sig_len as usize, "signature size");
        for (slot, &v) in signature.iter().enumerate() {
            self.set_position(slot, v);
        }
    }

    /// Clock periods port `port`'s head request has waited so far.
    #[must_use]
    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub fn wait(&self, port: PortId) -> u64 {
        self.buf[self.wait_base() + port.0]
    }

    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub(crate) fn bump_wait(&mut self, port: PortId) {
        let i = self.wait_base() + port.0;
        self.buf[i] += 1;
    }

    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    pub(crate) fn reset_wait(&mut self, port: PortId) {
        let i = self.wait_base() + port.0;
        self.buf[i] = 0;
    }

    /// The hashed, compared core: rotation, residues, open rows (DRAM
    /// model only) and position slots. Two states with equal cores have
    /// identical futures (given the same configuration and workload
    /// dynamics).
    #[must_use]
    pub fn core(&self) -> &[u64] {
        &self.buf[..self.wait_base()]
    }

    /// The incrementally maintained core hash.
    #[must_use]
    #[inline]
    pub fn hash(&self) -> u64 {
        self.h_res ^ self.h_rot ^ self.h_pos ^ self.h_row
    }

    // vecmem-lint: allow-fn(L7) -- buf index derives from the validated geometry that sized the buffer
    fn full_hash(&self) -> (u64, u64, u64, u64) {
        let mut h_res = 0;
        for w in 0..self.res_words as usize {
            h_res ^= component(RES_SEED, w as u64, self.buf[w + 1]);
        }
        let h_rot = component(ROT_SEED, 0, self.buf[0]);
        let mut h_pos = 0;
        for slot in 0..self.sig_len as usize {
            h_pos ^= component(POS_SEED, slot as u64, self.buf[self.pos_base() + slot]);
        }
        let mut h_row = 0;
        for bank in 0..self.row_words as usize {
            h_row ^= component(ROW_SEED, bank as u64, self.buf[self.row_base() + bank]);
        }
        (h_res, h_rot, h_pos, h_row)
    }

    /// Re-hashes the core from scratch — the value [`Self::hash`] must
    /// always equal. Exposed for the incremental-hash soundness tests and
    /// for debugging; the hot paths never call it.
    #[must_use]
    pub fn recompute_hash(&self) -> u64 {
        let (r, o, p, w) = self.full_hash();
        r ^ o ^ p ^ w
    }

    /// Per-port events of the last simulated clock period, in arbitration
    /// (input) order.
    #[must_use]
    pub fn outcomes(&self) -> &[PortEvent] {
        &self.outcomes
    }

    /// Declares an inclusive bound every position slot must stay within
    /// (`None` disables the check). Wired by the steady-state cursor from
    /// [`ObservableWorkload::signature_bound`](crate::steady::ObservableWorkload::signature_bound).
    pub fn set_slot_bound(&mut self, bound: Option<u64>) {
        self.slot_bound = bound;
    }

    /// Checks every structural invariant a reachable state satisfies:
    /// residues bounded by `n_c`, the rotation a valid port index,
    /// position slots within the workload's declared bound, and the
    /// incremental hash equal to a from-scratch recompute.
    ///
    /// Always compiled; the `sanitize` feature makes the step kernel call
    /// it after every cycle in debug builds.
    ///
    /// # Errors
    /// Returns the first [`InvariantViolation`] found, in the order above.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        for bank in 0..u64::from(self.banks) {
            let residue = self.residue(bank);
            if residue > self.max_residue {
                return Err(InvariantViolation::ResidueOverflow {
                    bank,
                    residue,
                    max: self.max_residue,
                });
            }
        }
        let rotation = self.rotation();
        if rotation >= self.ports.max(1) as usize {
            return Err(InvariantViolation::RotationOutOfRange {
                rotation,
                ports: self.ports,
            });
        }
        for bank in 0..u64::from(self.row_words) {
            if let Some(row) = self.open_row(bank) {
                if row >= self.max_rows {
                    return Err(InvariantViolation::OpenRowOutOfRange {
                        bank,
                        row,
                        rows: self.max_rows,
                    });
                }
            }
        }
        if let Some(bound) = self.slot_bound {
            for slot in 0..self.sig_len as usize {
                let position = self.position(slot);
                if position > bound {
                    return Err(InvariantViolation::PositionOutOfRange {
                        slot,
                        position,
                        bound,
                    });
                }
            }
        }
        let recomputed = self.recompute_hash();
        let incremental = self.hash();
        if incremental != recomputed {
            return Err(InvariantViolation::HashMismatch {
                incremental,
                recomputed,
            });
        }
        Ok(())
    }

    /// The canonical one-line-per-component dump used by divergence
    /// reports: rotation, residues, and (when present) position slots.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new(); // vecmem-lint: allow(L2) -- divergence reporting only
        let _ = write!(
            s,
            "rotation={} residues={:?}",
            self.rotation(),
            self.residues_vec()
        );
        if self.row_words > 0 {
            let rows: Vec<Option<u64>> = (0..u64::from(self.banks))
                .map(|b| self.open_row(b))
                .collect(); // vecmem-lint: allow(L2) -- divergence reporting only
            let _ = write!(s, " open_rows={rows:?}");
        }
        if self.sig_len > 0 {
            let positions: Vec<u64> = (0..self.sig_len as usize)
                .map(|i| self.position(i))
                .collect(); // vecmem-lint: allow(L2) -- divergence reporting only
            let _ = write!(s, " positions={positions:?}");
        }
        s
    }
}

/// Core equality: same dimensions and same (rotation, residues,
/// positions). Wait counters, scratch buffers and absolute time are
/// deliberately excluded — they do not influence future behaviour.
impl PartialEq for SimState {
    fn eq(&self, other: &Self) -> bool {
        self.banks == other.banks
            && self.ports == other.ports
            && self.sig_len == other.sig_len
            && self.row_words == other.row_words
            && self.core() == other.core()
    }
}

impl Eq for SimState {}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn config(m: u64, nc: u64, ports: usize) -> SimConfig {
        SimConfig::single_cpu(Geometry::unsectioned(m, nc).unwrap(), ports)
    }

    #[test]
    fn validate_accepts_fresh_and_catches_violations() {
        let cfg = config(8, 3, 1);
        let mut st = SimState::with_signature_slots(&cfg, 1);
        assert_eq!(st.validate(), Ok(()));
        st.set_residue(2, 5);
        assert_eq!(
            st.validate(),
            Err(InvariantViolation::ResidueOverflow {
                bank: 2,
                residue: 5,
                max: 3,
            })
        );
        st.set_residue(2, 3);
        assert_eq!(st.validate(), Ok(()));
        st.set_slot_bound(Some(8));
        st.set_position(0, 9);
        assert_eq!(
            st.validate(),
            Err(InvariantViolation::PositionOutOfRange {
                slot: 0,
                position: 9,
                bound: 8,
            })
        );
        st.set_position(0, 8);
        assert_eq!(st.validate(), Ok(()));
        st.set_rotation(4);
        assert_eq!(
            st.validate(),
            Err(InvariantViolation::RotationOutOfRange {
                rotation: 4,
                ports: 1,
            })
        );
    }

    #[test]
    fn residue_packing_roundtrip() {
        let cfg = config(12, 4, 2);
        let mut s = SimState::new(&cfg);
        s.set_residue(0, 3);
        s.set_residue(7, 1);
        s.set_residue(11, 4);
        assert_eq!(s.residue(0), 3);
        assert_eq!(s.residue(7), 1);
        assert_eq!(s.residue(11), 4);
        assert_eq!(s.residue(5), 0);
        assert_eq!(s.residues_vec(), vec![3, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 4]);
    }

    #[test]
    fn decrement_ages_and_queues_freed_banks() {
        let cfg = config(12, 4, 2);
        let mut s = SimState::new(&cfg);
        s.set_residue(2, 2);
        s.set_residue(9, 1);
        s.decrement_residues();
        assert_eq!(s.residue(2), 1);
        assert_eq!(s.residue(9), 0);
        assert_eq!(s.just_freed, vec![9]);
        s.decrement_residues();
        assert_eq!(s.residue(2), 0);
        assert_eq!(s.just_freed, vec![2]);
        s.decrement_residues();
        assert!(s.just_freed.is_empty());
    }

    #[test]
    fn incremental_hash_matches_recompute() {
        let cfg = config(16, 4, 3);
        let mut s = SimState::with_signature_slots(&cfg, 3);
        assert_eq!(s.hash(), s.recompute_hash());
        s.set_residue(3, 4);
        s.set_residue(8, 2);
        s.set_position(0, 7);
        s.set_position(2, 15);
        s.set_rotation(2);
        assert_eq!(s.hash(), s.recompute_hash());
        s.decrement_residues();
        assert_eq!(s.hash(), s.recompute_hash());
        s.set_rotation(0);
        s.set_position(0, 0);
        assert_eq!(s.hash(), s.recompute_hash());
    }

    #[test]
    fn equality_ignores_waits_and_time() {
        let cfg = config(8, 2, 2);
        let mut a = SimState::new(&cfg);
        let mut b = SimState::new(&cfg);
        a.bump_wait(PortId(0));
        a.advance_now();
        assert_eq!(a, b);
        b.set_residue(1, 2);
        assert_ne!(a, b);
        a.set_residue(1, 2);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn pack_matches_stepwise_construction() {
        let cfg = config(8, 3, 2);
        let packed = SimState::pack(&cfg, &[0, 2, 0, 0, 1, 0, 0, 0], &[4, 6], 1);
        let mut built = SimState::with_signature_slots(&cfg, 2);
        built.set_residue(1, 2);
        built.set_residue(4, 1);
        built.set_position(0, 4);
        built.set_position(1, 6);
        built.set_rotation(1);
        assert_eq!(packed, built);
        assert_eq!(packed.hash(), built.hash());
        assert_eq!(packed.hash(), packed.recompute_hash());
    }

    #[test]
    fn render_names_all_core_components() {
        let cfg = config(4, 2, 1);
        let s = SimState::pack(&cfg, &[0, 2, 0, 0], &[3], 0);
        let dump = s.render();
        assert!(dump.contains("rotation=0"), "{dump}");
        assert!(dump.contains("residues=[0, 2, 0, 0]"), "{dump}");
        assert!(dump.contains("positions=[3]"), "{dump}");
    }

    #[test]
    #[should_panic(expected = "u8 residue encoding")]
    fn oversized_bank_cycle_rejected() {
        let cfg = config(4, 300, 1);
        let _ = SimState::new(&cfg);
    }

    fn dram_config(m: u64, nc: u64, ports: usize, rows: u64) -> SimConfig {
        config(m, nc, ports).with_bank_model(crate::config::BankModel::Dram { hit_cycle: 1, rows })
    }

    #[test]
    fn uniform_model_packs_no_row_words() {
        let cfg = config(8, 3, 2);
        let s = SimState::with_signature_slots(&cfg, 2);
        assert_eq!(s.open_row(3), None);
        // Same dimensions with rows enabled: a distinct state kind.
        let d = SimState::with_signature_slots(&dram_config(8, 3, 2, 4), 2);
        assert_ne!(s, d);
    }

    #[test]
    fn open_rows_hash_and_compare() {
        let cfg = dram_config(8, 3, 1, 4);
        let mut a = SimState::new(&cfg);
        let b = SimState::new(&cfg);
        assert_eq!(a, b);
        a.set_open_row(2, 3);
        assert_eq!(a.open_row(2), Some(3));
        assert_eq!(a.open_row(1), None);
        assert_ne!(a, b);
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), a.recompute_hash());
        a.sync_open_rows(&[None; 8]);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn validate_catches_out_of_range_open_row() {
        let cfg = dram_config(8, 3, 1, 4);
        let mut s = SimState::new(&cfg);
        s.set_open_row(5, 3);
        assert_eq!(s.validate(), Ok(()));
        s.set_open_row(5, 4);
        assert_eq!(
            s.validate(),
            Err(InvariantViolation::OpenRowOutOfRange {
                bank: 5,
                row: 4,
                rows: 4,
            })
        );
        let msg = InvariantViolation::OpenRowOutOfRange {
            bank: 5,
            row: 4,
            rows: 4,
        }
        .to_string();
        assert!(msg.contains("open row 4"), "{msg}");
    }

    #[test]
    fn render_includes_open_rows_under_dram() {
        let cfg = dram_config(4, 2, 1, 4);
        let mut s = SimState::new(&cfg);
        s.set_open_row(1, 2);
        let dump = s.render();
        assert!(dump.contains("open_rows="), "{dump}");
        assert!(dump.contains("Some(2)"), "{dump}");
    }
}
