//! Isomorphism of distance pairs (paper Appendix).
//!
//! Writing `d1 ⊕ d2` for two streams with distances `d1`, `d2` competing for
//! access, the Appendix observes that for any `k` with `gcd(k, m) = 1`
//!
//! ```text
//! d1 ⊕ d2  ≡  k·d1 ⊕ k·d2   (mod m)
//! ```
//!
//! because multiplying every bank address by a unit `k` merely renumbers the
//! banks. Consequently only distances `d1 | m` need to be analysed; the
//! barrier theorems (Thms 4–7) are stated in that canonical form.
//!
//! **Scope**: the renumbering permutes banks, so it preserves *bank* and
//! *simultaneous bank* conflicts exactly, but it does **not** commute with
//! the bank→section mapping. Canonicalisation is therefore only valid for
//! the unsectioned analysis (`s = m`), or for cross-CPU pairs where access
//! paths are never a bottleneck.

use crate::geometry::Geometry;
use crate::numtheory::{coprime, gcd, unit_multiplier_to};
use crate::stream::StreamSpec;

/// The lexicographically smallest image of `streams` under all unit
/// renumberings `b ↦ k·b (mod m)`, `gcd(k, m) = 1`, comparing the flattened
/// `(distance, start_bank)` sequence port by port.
///
/// Two stream sets with the same canonical image are *isomorphic*: the
/// renumbering is a bijection of banks that commutes with every step of the
/// simulator's dynamics, so bank conflicts, simultaneous bank conflicts and
/// the entire cyclic state (per-port bandwidths, period, transient) coincide.
/// This is the Appendix relation `d1 ⊕ d2 ≡ k·d1 ⊕ k·d2 (mod m)` extended to
/// explicit start banks and any number of streams.
///
/// **Scope**: valid only for unsectioned geometries (`s = m`) — the
/// renumbering does not commute with the bank→section mapping. Callers (e.g.
/// `vecmem-exec`'s result cache) must fall back to the identity for
/// sectioned systems. Port order is *never* permuted: priority sits with the
/// port index, so only the bank relabelling is quotiented out.
#[must_use]
pub fn canonical_streams(geom: &Geometry, streams: &[StreamSpec]) -> Vec<StreamSpec> {
    let m = geom.banks();
    let flatten = |k: u64| -> Vec<StreamSpec> {
        streams
            .iter()
            .map(|s| StreamSpec {
                distance: (k as u128 * (s.distance % m) as u128 % m as u128) as u64,
                start_bank: (k as u128 * (s.start_bank % m) as u128 % m as u128) as u64,
            })
            .collect()
    };
    let order_key = |specs: &[StreamSpec]| -> Vec<u64> {
        specs
            .iter()
            .flat_map(|s| [s.distance, s.start_bank])
            .collect()
    };
    let mut best = flatten(1);
    let mut best_key = order_key(&best);
    for k in 2..m {
        if !coprime(k, m) {
            continue;
        }
        let cand = flatten(k);
        let key = order_key(&cand);
        if key < best_key {
            best = cand;
            best_key = key;
        }
    }
    best
}

/// A distance pair brought into the canonical form required by the barrier
/// theorems: `d1 | m` and `d2 > d1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalPair {
    /// Canonical distance of the (potential) barrier-forming stream; divides `m`.
    pub d1: u64,
    /// Canonical distance of the (potentially) delayed stream; `d2 > d1`.
    pub d2: u64,
    /// The unit multiplier `k` applied to bank addresses (`gcd(k, m) = 1`).
    pub multiplier: u64,
    /// True when the canonical `d1` corresponds to the *second* input stream
    /// (the pair had to be swapped to satisfy `d2 > d1`).
    pub swapped: bool,
}

impl CanonicalPair {
    /// Maps a bank address of the original system into the renumbered system.
    #[must_use]
    pub fn map_bank(&self, geom: &Geometry, bank: u64) -> u64 {
        (self.multiplier as u128 * bank as u128 % geom.banks() as u128) as u64
    }

    /// Maps an original stream spec into the canonical system.
    #[must_use]
    pub fn map_stream(&self, geom: &Geometry, spec: &StreamSpec) -> StreamSpec {
        StreamSpec {
            start_bank: self.map_bank(geom, spec.start_bank),
            distance: self.map_bank(geom, spec.distance),
        }
    }
}

/// Attempts to bring the unordered distance pair `{da, db}` into canonical
/// form (`d1 | m`, `d2 > d1`) via a unit renumbering.
///
/// Tries making `da` canonical first (mapping it to `gcd(m, da)`), then `db`.
/// Returns `None` when neither orientation yields `d2 > d1` — notably when
/// the two distances are "equivalent" (`k·da ≡ db` for some unit `k`, which
/// includes `da == db`); the barrier theorems do not apply there.
#[must_use]
pub fn canonicalize(geom: &Geometry, da: u64, db: u64) -> Option<CanonicalPair> {
    let m = geom.banks();
    let mut best: Option<CanonicalPair> = None;
    for (&x, &y, swapped) in [(&da, &db, false), (&db, &da, true)] {
        let g = gcd(m, x % m);
        if g == 0 {
            continue; // m would have to be 0, excluded by Geometry.
        }
        let Some(k) = unit_multiplier_to(x % m, g % m, m) else {
            continue;
        };
        debug_assert!(coprime(k, m));
        let d1 = g % m;
        let d2 = (k as u128 * (y % m) as u128 % m as u128) as u64;
        if d1 != 0 && d2 > d1 && m.is_multiple_of(d1) {
            let cand = CanonicalPair {
                d1,
                d2,
                multiplier: k,
                swapped,
            };
            // Prefer the orientation with the smaller canonical d1 so results
            // are deterministic regardless of argument order.
            match &best {
                Some(b) if b.d1 <= cand.d1 => {}
                _ => best = Some(cand),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn geom(m: u64) -> Geometry {
        Geometry::unsectioned(m, 2).unwrap()
    }

    #[test]
    fn appendix_example_m16() {
        // Paper: 1 ⊕ 3 ≡ 5 ⊕ 15 ≡ 11 ⊕ 1 (mod 16).
        let g = geom(16);
        let c = canonicalize(&g, 5, 15).unwrap();
        assert_eq!(c.d1, 1);
        // 5 maps to 1 with k = 13 (5·13 = 65 ≡ 1), giving d2 = 15·13 ≡ 3,
        // exactly the 1 ⊕ 3 form of the Appendix.
        assert_eq!(c.d2, 3);
        assert!(!c.swapped || c.d2 > c.d1);
    }

    #[test]
    fn appendix_example_2_3_m16() {
        // 2 ⊕ 3 ≡ 6 ⊕ 9 ≡ 6 ⊕ 1 (mod 16): canonical form has d1 = 1 (from
        // the 3-side, swapped) and d2 = 6.
        let g = geom(16);
        let c = canonicalize(&g, 2, 3).unwrap();
        assert_eq!(c.d1, 1);
        assert_eq!(c.d2, 6);
        assert!(c.swapped);
        assert_eq!(16 % c.d1, 0);
    }

    #[test]
    fn canonical_invariants_hold_for_sweep() {
        for m in [8u64, 12, 13, 16, 24] {
            let g = geom(m);
            for da in 1..m {
                for db in 1..m {
                    if let Some(c) = canonicalize(&g, da, db) {
                        assert_eq!(m % c.d1, 0, "d1 must divide m: m={m} da={da} db={db}");
                        assert!(c.d2 > c.d1, "d2 > d1 required: m={m} da={da} db={db}");
                        assert!(coprime(c.multiplier, m));
                        // Return numbers are invariant under the renumbering.
                        let (orig1, orig2) = if c.swapped { (db, da) } else { (da, db) };
                        assert_eq!(g.return_number(orig1), g.return_number(c.d1));
                        assert_eq!(g.return_number(orig2), g.return_number(c.d2));
                    }
                }
            }
        }
    }

    #[test]
    fn equal_distances_have_no_canonical_form() {
        let g = geom(12);
        for d in 1..12 {
            assert!(
                canonicalize(&g, d, d).is_none(),
                "equal distances cannot satisfy d2 > d1 (d = {d})"
            );
        }
    }

    #[test]
    fn equivalent_distances_have_no_canonical_form() {
        // 1 and 5 are both units mod 12; k·1 ≡ 1 forces k = 1 and 5 > 1 works
        // though: the pair (1, 5) IS canonicalizable. A non-canonicalizable
        // distinct pair needs both to map onto the same gcd: e.g. m = 12,
        // da = 5, db = 7 -> canonical (1, 11): works. Truly impossible cases
        // are rare; verify a known one: m = 4, da = 1, db = 3 -> (1, 3). So
        // just assert the function never loops and returns consistent data.
        let g = geom(12);
        let c = canonicalize(&g, 5, 7).unwrap();
        assert_eq!(c.d1, 1);
        assert_eq!(c.d2, 11);
    }

    #[test]
    fn map_stream_preserves_structure() {
        let g = geom(16);
        let c = canonicalize(&g, 5, 15).unwrap();
        let s = StreamSpec::new(&g, 3, 5).unwrap();
        let mapped = c.map_stream(&g, &s);
        assert_eq!(mapped.distance, (c.multiplier * 5) % 16);
        assert_eq!(mapped.start_bank, (c.multiplier * 3) % 16);
        // The mapped stream's k-th bank equals the mapped k-th bank.
        for k in 0..20 {
            assert_eq!(mapped.bank_at(&g, k), c.map_bank(&g, s.bank_at(&g, k)));
        }
    }

    #[test]
    fn canonical_streams_identifies_appendix_pairs() {
        // 1 ⊕ 3 ≡ 5 ⊕ 15 ≡ 11 ⊕ 1 (mod 16): all three orbit representatives
        // collapse onto one canonical image (start banks 0 are fixed points).
        let g = geom(16);
        let mk = |d1: u64, d2: u64| {
            canonical_streams(
                &g,
                &[
                    StreamSpec {
                        start_bank: 0,
                        distance: d1,
                    },
                    StreamSpec {
                        start_bank: 0,
                        distance: d2,
                    },
                ],
            )
        };
        assert_eq!(mk(1, 3), mk(5, 15));
        assert_eq!(mk(1, 3), mk(11, 1));
        // Non-isomorphic pairs stay apart: 1 ⊕ 2 has gcd profile (1, 2),
        // 1 ⊕ 3 has (1, 1).
        assert_ne!(mk(1, 3), mk(1, 2));
    }

    #[test]
    fn canonical_streams_is_idempotent_and_in_orbit() {
        let g = geom(12);
        for d1 in 0..12u64 {
            for d2 in 0..12u64 {
                for b2 in 0..12u64 {
                    let specs = [
                        StreamSpec {
                            start_bank: 3,
                            distance: d1,
                        },
                        StreamSpec {
                            start_bank: b2,
                            distance: d2,
                        },
                    ];
                    let canon = canonical_streams(&g, &specs);
                    // Idempotent: canonicalising the canonical form is a no-op.
                    assert_eq!(canonical_streams(&g, &canon), canon);
                    // In-orbit: some unit k maps the original onto it.
                    let witness = (1..12).filter(|&k| coprime(k, 12)).any(|k| {
                        specs.iter().zip(&canon).all(|(s, c)| {
                            c.distance == k * (s.distance % 12) % 12
                                && c.start_bank == k * (s.start_bank % 12) % 12
                        })
                    });
                    assert!(witness, "no unit maps {specs:?} onto {canon:?}");
                }
            }
        }
    }

    #[test]
    fn canonical_streams_respects_port_order() {
        // (d1, d2) = (2, 3) and (3, 2) are different scenarios (priority sits
        // with port 0) and must not collapse.
        let g = geom(16);
        let a = canonical_streams(
            &g,
            &[
                StreamSpec {
                    start_bank: 0,
                    distance: 2,
                },
                StreamSpec {
                    start_bank: 0,
                    distance: 3,
                },
            ],
        );
        let b = canonical_streams(
            &g,
            &[
                StreamSpec {
                    start_bank: 0,
                    distance: 3,
                },
                StreamSpec {
                    start_bank: 0,
                    distance: 2,
                },
            ],
        );
        assert_ne!(a, b);
    }

    #[test]
    fn zero_distance_cannot_be_barrier_canonical() {
        let g = geom(12);
        // db = 0 maps to 0, never > d1; canonicalize on the 0 side gives
        // d1 = gcd(12, 0) = 0 which is rejected.
        assert!(canonicalize(&g, 0, 0).is_none());
        // (3, 0): canonical d1 = 3, d2 = 0 -> invalid; swap side d1 = 0 ->
        // invalid. Result: None.
        assert!(canonicalize(&g, 3, 0).is_none());
    }
}
