//! Memory geometry: the static parameters of an interleaved memory system.
//!
//! Section II of the paper: an `m`-way interleaved memory, optionally divided
//! into `s | m` sections (one access path per CPU per section), with bank
//! cycle time `t_c = n_c · τ` expressed as `n_c` clock periods.

use crate::error::ModelError;
use crate::numtheory::gcd;

/// How banks are assigned to sections.
///
/// The paper assumes cyclic distribution (`k = j mod s`); Cheung & Smith \[8\]
/// proposed combining `m/s` *consecutive* banks into a section to prevent
/// linked conflicts (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SectionMapping {
    /// `section(j) = j mod s` — the paper's default (and the Cray X-MP's).
    #[default]
    Cyclic,
    /// `section(j) = j / (m/s)` — Cheung & Smith's consecutive grouping.
    Consecutive,
}

/// Static geometry of an interleaved memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    banks: u64,
    sections: u64,
    bank_cycle: u64,
    mapping: SectionMapping,
}

impl Geometry {
    /// Creates a geometry with `banks` banks, `sections` sections and a bank
    /// cycle time of `bank_cycle` clock periods, using cyclic bank-to-section
    /// mapping.
    ///
    /// # Errors
    /// Returns an error unless `banks > 0`, `sections > 0`,
    /// `sections <= banks`, `sections | banks` and `bank_cycle > 0`.
    pub fn new(banks: u64, sections: u64, bank_cycle: u64) -> Result<Self, ModelError> {
        Self::with_mapping(banks, sections, bank_cycle, SectionMapping::Cyclic)
    }

    /// Like [`Geometry::new`] but with an explicit [`SectionMapping`].
    ///
    /// # Errors
    /// Same contract as [`Geometry::new`]: `banks`, `sections` and
    /// `bank_cycle` must be positive, with `sections` dividing `banks`.
    pub fn with_mapping(
        banks: u64,
        sections: u64,
        bank_cycle: u64,
        mapping: SectionMapping,
    ) -> Result<Self, ModelError> {
        if banks == 0 {
            return Err(ModelError::ZeroBanks);
        }
        if sections == 0 {
            return Err(ModelError::ZeroSections);
        }
        if sections > banks {
            return Err(ModelError::MoreSectionsThanBanks { banks, sections });
        }
        if !banks.is_multiple_of(sections) {
            return Err(ModelError::SectionsDontDivideBanks { banks, sections });
        }
        if bank_cycle == 0 {
            return Err(ModelError::ZeroBankCycle);
        }
        Ok(Self {
            banks,
            sections,
            bank_cycle,
            mapping,
        })
    }

    /// Geometry without sections (`s = m`): every bank has its own path, so
    /// section conflicts cannot occur. This is the setting of §III-B
    /// "Equal Number of Sections and Banks".
    ///
    /// # Errors
    /// Returns an error unless `banks > 0` and `bank_cycle > 0`.
    pub fn unsectioned(banks: u64, bank_cycle: u64) -> Result<Self, ModelError> {
        Self::new(banks, banks, bank_cycle)
    }

    /// The memory geometry of the 16-bank Cray X-MP with bipolar memory:
    /// `m = 16`, `s = 4`, `n_c = 4`, cyclic section mapping (paper §IV).
    #[must_use]
    pub fn cray_xmp() -> Self {
        Self::new(16, 4, 4).expect("X-MP geometry is valid")
    }

    /// Number of banks `m`.
    #[must_use]
    pub fn banks(&self) -> u64 {
        self.banks
    }

    /// Number of sections `s`.
    #[must_use]
    pub fn sections(&self) -> u64 {
        self.sections
    }

    /// Bank cycle time `n_c` in clock periods: a bank that is granted at
    /// clock period `t` cannot be referenced again before `t + n_c`.
    #[must_use]
    pub fn bank_cycle(&self) -> u64 {
        self.bank_cycle
    }

    /// Bank-to-section mapping rule.
    #[must_use]
    pub fn mapping(&self) -> SectionMapping {
        self.mapping
    }

    /// True when every bank has its own access path (`s = m`), so section
    /// conflicts are impossible.
    #[must_use]
    pub fn is_unsectioned(&self) -> bool {
        self.sections == self.banks
    }

    /// Banks per section (`m / s`).
    #[must_use]
    pub fn banks_per_section(&self) -> u64 {
        self.banks / self.sections
    }

    /// Bank address of storage cell `address`: `j = address mod m`.
    #[must_use]
    pub fn bank_of(&self, address: u64) -> u64 {
        address % self.banks
    }

    /// Section address of bank `bank` under the configured mapping.
    #[must_use]
    pub fn section_of(&self, bank: u64) -> u64 {
        let bank = bank % self.banks;
        match self.mapping {
            SectionMapping::Cyclic => bank % self.sections,
            SectionMapping::Consecutive => bank / self.banks_per_section(),
        }
    }

    /// Validates a start-bank address for this geometry.
    ///
    /// # Errors
    /// Returns [`ModelError::StartBankOutOfRange`] when `start_bank >= m`.
    pub fn check_start_bank(&self, start_bank: u64) -> Result<(), ModelError> {
        if start_bank >= self.banks {
            return Err(ModelError::StartBankOutOfRange {
                start_bank,
                banks: self.banks,
            });
        }
        Ok(())
    }

    /// Validates a distance (stride modulo `m`) for this geometry.
    ///
    /// # Errors
    /// Returns [`ModelError::DistanceOutOfRange`] when `distance >= m`.
    pub fn check_distance(&self, distance: u64) -> Result<(), ModelError> {
        if distance >= self.banks {
            return Err(ModelError::DistanceOutOfRange {
                distance,
                banks: self.banks,
            });
        }
        Ok(())
    }

    /// Return number (Theorem 1) for a stream with distance `d` in this
    /// geometry: the number of accesses before the stream revisits a bank,
    /// `r = m / gcd(m, d)`.
    #[must_use]
    pub fn return_number(&self, distance: u64) -> u64 {
        self.banks / gcd(self.banks, distance % self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry() {
        let g = Geometry::new(16, 4, 4).unwrap();
        assert_eq!(g.banks(), 16);
        assert_eq!(g.sections(), 4);
        assert_eq!(g.bank_cycle(), 4);
        assert_eq!(g.banks_per_section(), 4);
        assert!(!g.is_unsectioned());
    }

    #[test]
    fn unsectioned_geometry() {
        let g = Geometry::unsectioned(13, 6).unwrap();
        assert!(g.is_unsectioned());
        assert_eq!(g.sections(), 13);
        assert_eq!(g.banks_per_section(), 1);
    }

    #[test]
    fn invalid_geometries() {
        assert_eq!(Geometry::new(0, 1, 1).unwrap_err(), ModelError::ZeroBanks);
        assert_eq!(
            Geometry::new(4, 0, 1).unwrap_err(),
            ModelError::ZeroSections
        );
        assert_eq!(
            Geometry::new(12, 5, 1).unwrap_err(),
            ModelError::SectionsDontDivideBanks {
                banks: 12,
                sections: 5
            }
        );
        assert_eq!(
            Geometry::new(4, 8, 1).unwrap_err(),
            ModelError::MoreSectionsThanBanks {
                banks: 4,
                sections: 8
            }
        );
        assert_eq!(
            Geometry::new(4, 2, 0).unwrap_err(),
            ModelError::ZeroBankCycle
        );
    }

    #[test]
    fn cyclic_section_mapping() {
        // Fig. 1: four-way interleaved memory with two sections; banks 0 and 2
        // are in section 0, banks 1 and 3 in section 1.
        let g = Geometry::new(4, 2, 1).unwrap();
        assert_eq!(g.section_of(0), 0);
        assert_eq!(g.section_of(1), 1);
        assert_eq!(g.section_of(2), 0);
        assert_eq!(g.section_of(3), 1);
    }

    #[test]
    fn consecutive_section_mapping() {
        // Fig. 9: m/s consecutive banks per section; m = 12, s = 3 puts banks
        // 0..4 in section 0, 4..8 in section 1, 8..12 in section 2.
        let g = Geometry::with_mapping(12, 3, 3, SectionMapping::Consecutive).unwrap();
        assert_eq!(g.section_of(0), 0);
        assert_eq!(g.section_of(3), 0);
        assert_eq!(g.section_of(4), 1);
        assert_eq!(g.section_of(7), 1);
        assert_eq!(g.section_of(8), 2);
        assert_eq!(g.section_of(11), 2);
    }

    #[test]
    fn bank_of_wraps_addresses() {
        let g = Geometry::cray_xmp();
        assert_eq!(g.bank_of(0), 0);
        assert_eq!(g.bank_of(16), 0);
        assert_eq!(g.bank_of(16 * 1024 + 1), 1); // IDIM of the paper's triad
    }

    #[test]
    fn return_number_theorem1() {
        let g = Geometry::unsectioned(16, 4).unwrap();
        assert_eq!(g.return_number(1), 16);
        assert_eq!(g.return_number(2), 8);
        assert_eq!(g.return_number(8), 2);
        assert_eq!(g.return_number(0), 1); // d = 0 revisits immediately
        assert_eq!(g.return_number(3), 16);
        assert_eq!(g.return_number(6), 8);
    }

    #[test]
    fn check_parameters() {
        let g = Geometry::cray_xmp();
        assert!(g.check_start_bank(15).is_ok());
        assert!(g.check_start_bank(16).is_err());
        assert!(g.check_distance(15).is_ok());
        assert!(g.check_distance(16).is_err());
    }

    #[test]
    fn xmp_preset_matches_paper() {
        let g = Geometry::cray_xmp();
        assert_eq!((g.banks(), g.sections(), g.bank_cycle()), (16, 4, 4));
        assert_eq!(g.mapping(), SectionMapping::Cyclic);
    }
}
