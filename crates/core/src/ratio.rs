//! Exact rational bandwidth values.
//!
//! Effective bandwidths in the model are exact rationals (e.g. `b_eff = 1 +
//! d1/d2` for a unique barrier-situation, eq. 29), so we carry them as
//! reduced fractions and only convert to `f64` at the edge.

use crate::numtheory::gcd;
use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational number in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates `num / den`, reduced to lowest terms. Panics if `den == 0`.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be nonzero");
        let g = gcd(num, den);
        if g == 0 {
            return Self { num: 0, den: 1 };
        }
        Self {
            num: num / g,
            den: den / g,
        }
    }

    /// The integer `n` as a ratio.
    #[must_use]
    pub fn integer(n: u64) -> Self {
        Self { num: n, den: 1 }
    }

    /// Numerator in lowest terms.
    #[must_use]
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator in lowest terms.
    #[must_use]
    pub fn den(&self) -> u64 {
        self.den
    }

    /// Conversion to floating point.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Sum of two ratios.
    #[must_use]
    pub fn add(&self, other: &Ratio) -> Ratio {
        Ratio::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    /// True when this ratio equals `grants / cycles` (useful for comparing a
    /// simulated steady state against an analytic prediction without float
    /// round-off).
    #[must_use]
    pub fn matches_counts(&self, grants: u64, cycles: u64) -> bool {
        cycles != 0
            && (self.num as u128) * (cycles as u128) == (grants as u128) * (self.den as u128)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        ((self.num as u128) * (other.den as u128)).cmp(&((other.num as u128) * (self.den as u128)))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction() {
        let r = Ratio::new(4, 6);
        assert_eq!((r.num(), r.den()), (2, 3));
        assert_eq!(Ratio::new(0, 5), Ratio::integer(0));
        assert_eq!(Ratio::new(7, 7), Ratio::integer(1));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn barrier_bandwidth_eq29() {
        // Unique barrier with d1 = 1, d2 = 3: b_eff = 1 + 1/3 = 4/3.
        let beff = Ratio::integer(1).add(&Ratio::new(1, 3));
        assert_eq!(beff, Ratio::new(4, 3));
        assert!((beff.to_f64() - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 2) < Ratio::new(2, 3));
        assert!(Ratio::integer(2) > Ratio::new(7, 6));
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
    }

    #[test]
    fn matches_counts_exactly() {
        // 3/2 = 12 grants in 8 cycles.
        assert!(Ratio::new(3, 2).matches_counts(12, 8));
        assert!(!Ratio::new(3, 2).matches_counts(13, 8));
        assert!(!Ratio::new(3, 2).matches_counts(12, 0));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(4, 3).to_string(), "4/3");
        assert_eq!(Ratio::integer(2).to_string(), "2");
        assert_eq!(Ratio::new(6, 3).to_string(), "2");
    }
}
