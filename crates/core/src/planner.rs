//! Stride planning: the programmer-facing advice of the paper's conclusion.
//!
//! "For the programmer it is important to identify the distances which the
//! required access streams will have. [...] A safe method is to choose the
//! dimension of arrays so that they are relatively prime to the number of
//! banks."
//!
//! This module evaluates candidate strides against a geometry and suggests
//! array-dimension padding that avoids self-conflicts and pairwise hazards.

use crate::geometry::Geometry;
use crate::numtheory::coprime;
use crate::pair::{classify_pair, PairClass};
use crate::ratio::Ratio;
use crate::stream::StreamSpec;

/// Quality assessment of a single stride on a given geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrideReport {
    /// The stride as given (before reduction modulo `m`).
    pub stride: u64,
    /// The distance `d = stride mod m`.
    pub distance: u64,
    /// Return number `r` (Theorem 1).
    pub return_number: u64,
    /// Solo effective bandwidth `min(1, r/n_c)`.
    pub solo_bandwidth: Ratio,
    /// True when the stream never waits on itself (`r >= n_c`).
    pub self_conflict_free: bool,
    /// True when `r >= 2·n_c`, the stronger bound the pair theorems need for
    /// the barrier-forming stream.
    pub robust: bool,
}

/// Assesses a stride in isolation.
#[must_use]
pub fn assess_stride(geom: &Geometry, stride: u64) -> StrideReport {
    let distance = stride % geom.banks();
    let spec = StreamSpec {
        start_bank: 0,
        distance,
    };
    let r = spec.return_number(geom);
    let (num, den) = spec.solo_bandwidth_ratio(geom);
    StrideReport {
        stride,
        distance,
        return_number: r,
        solo_bandwidth: Ratio::new(num, den),
        self_conflict_free: r >= geom.bank_cycle(),
        robust: r >= 2 * geom.bank_cycle(),
    }
}

/// Smallest padded leading dimension `>= dim` that is relatively prime to
/// the number of banks, so that every row/diagonal stride derived from it
/// has the full return number `r = m`.
///
/// ```
/// use vecmem_analytic::{Geometry, planner::pad_dimension};
/// let xmp = Geometry::cray_xmp();
/// // The paper's triad uses IDIM = 16*1024 + 1 for exactly this reason:
/// assert_eq!(pad_dimension(&xmp, 16 * 1024), 16 * 1024 + 1);
/// ```
#[must_use]
pub fn pad_dimension(geom: &Geometry, dim: u64) -> u64 {
    let m = geom.banks();
    let mut candidate = dim.max(1);
    // A coprime residue exists within any window of m consecutive integers.
    while !coprime(candidate, m) {
        candidate += 1;
    }
    candidate
}

/// True when running streams of stride `da` and `db` concurrently (from
/// different CPUs, arbitrary start banks) is guaranteed to reach full
/// bandwidth 2 in steady state.
#[must_use]
pub fn pair_is_safe(geom: &Geometry, da: u64, db: u64) -> bool {
    let m = geom.banks();
    let s1 = StreamSpec {
        start_bank: 0,
        distance: da % m,
    };
    let s2 = StreamSpec {
        start_bank: 0,
        distance: db % m,
    };
    // Start banks chosen worst-case here (0, 0): only Theorem 3's
    // synchronisation guarantees safety for arbitrary starts.
    matches!(classify_pair(geom, &s1, &s2, true), PairClass::ConflictFree)
}

/// All strides in `1..=max_stride` that are safe both alone and against a
/// unit-stride background stream — the situation of the paper's Fig. 10
/// experiment, where the second CPU accesses memory with distance 1.
#[must_use]
pub fn safe_strides_against_unit(geom: &Geometry, max_stride: u64) -> Vec<u64> {
    (1..=max_stride)
        .filter(|&inc| {
            let report = assess_stride(geom, inc);
            report.self_conflict_free && pair_is_safe(geom, inc, 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assess_unit_stride() {
        let g = Geometry::cray_xmp();
        let r = assess_stride(&g, 1);
        assert_eq!(r.return_number, 16);
        assert!(r.self_conflict_free);
        assert!(r.robust);
        assert_eq!(r.solo_bandwidth, Ratio::integer(1));
    }

    #[test]
    fn assess_power_of_two_strides() {
        let g = Geometry::cray_xmp();
        let r8 = assess_stride(&g, 8);
        assert_eq!(r8.return_number, 2);
        assert!(!r8.self_conflict_free);
        assert_eq!(r8.solo_bandwidth, Ratio::new(1, 2));
        let r16 = assess_stride(&g, 16);
        assert_eq!(r16.distance, 0);
        assert_eq!(r16.return_number, 1);
        assert_eq!(r16.solo_bandwidth, Ratio::new(1, 4));
    }

    #[test]
    fn pad_dimension_to_coprime() {
        let g = Geometry::cray_xmp();
        assert_eq!(pad_dimension(&g, 16), 17); // 16 shares factor 16
        assert_eq!(pad_dimension(&g, 17), 17);
        assert_eq!(pad_dimension(&g, 1024), 1025);
        assert_eq!(pad_dimension(&g, 0), 1);
        // The paper's triad uses IDIM = 16·1024 + 1 for exactly this reason.
        assert_eq!(pad_dimension(&g, 16 * 1024), 16 * 1024 + 1);
    }

    #[test]
    fn safe_strides_on_xmp() {
        // m = 16, n_c = 4: against a unit-stride background, stride 9 gives
        // gcd(16, 8) = 8 >= 8 (Theorem 3) -> safe; stride 2 gives
        // gcd(16, 1) = 1 -> unsafe; stride 1 (equal distances) gives
        // gcd(16, 0) = 16 -> safe.
        let g = Geometry::cray_xmp();
        let safe = safe_strides_against_unit(&g, 16);
        assert!(safe.contains(&1));
        assert!(safe.contains(&9));
        assert!(!safe.contains(&2));
        assert!(!safe.contains(&8)); // self-conflicting
        assert!(!safe.contains(&16));
    }

    #[test]
    fn pair_safety_is_symmetric() {
        let g = Geometry::unsectioned(24, 3).unwrap();
        for da in 1..24 {
            for db in 1..24 {
                assert_eq!(pair_is_safe(&g, da, db), pair_is_safe(&g, db, da));
            }
        }
    }
}
