//! Fewer sections than banks (paper §III-B, Theorems 8–9, eq. 32, and the
//! linked conflict).
//!
//! When two streams come from the *same* CPU and `s < m`, the access paths
//! are shared: every granted request occupies its section's path for one
//! clock period, so in addition to bank conflicts the streams may suffer
//! *section conflicts*. Unlike the `s = m` case there is no general
//! synchronisation result — conflict-freeness requires specific relative
//! start banks, and with a fixed priority rule an unlucky start can lock the
//! streams into a *linked conflict* (alternating bank and section conflicts,
//! Fig. 8a) that only a cyclic priority rule (Fig. 8b) or consecutive-bank
//! section mapping (Fig. 9, Cheung & Smith) resolves.

use crate::geometry::Geometry;
use crate::numtheory::{gcd, gcd3, mod_reduce};
use crate::pair::conflict_free_condition;
use crate::stream::{access_sets_disjoint, section_sets_disjoint, StreamSpec};

/// Theorem 8: when the access sets are disjoint but the section sets are
/// not, conflict-free streams can only be achieved if
/// `gcd(s, d2 - d1) >= 2`. (Necessary condition; follows from Theorem 3 with
/// `m -> s` and the path "cycle time" `n_c -> 1`.)
#[must_use]
pub fn thm8_condition(geom: &Geometry, d1: u64, d2: u64) -> bool {
    let s = geom.sections();
    let diff = mod_reduce(d2 as i128 - d1 as i128, s);
    gcd(s, diff) >= 2
}

/// Theorem 9: if Theorem 3's condition (eq. 12) holds *and* `n_c·d1` is not
/// a multiple of `s`, the two streams are conflict free when relatively
/// positioned by `n_c·d1` — the simultaneous requests of the conflict-free
/// cycle then always target different sections.
#[must_use]
pub fn thm9_condition(geom: &Geometry, d1: u64, d2: u64) -> bool {
    conflict_free_condition(geom, d1, d2)
        && !(geom.bank_cycle() * (d1 % geom.banks())).is_multiple_of(geom.sections())
}

/// Eq. 32: when Theorem 9's section condition fails (`s | n_c·d1`),
/// conflict-free streams are still possible if
/// `gcd(m/f, (d2 - d1)/f) >= 2(n_c + 1)`, with the start banks relatively
/// positioned by `(n_c + 1)·d1` — one extra clock period is spent to dodge
/// the section conflict.
///
/// The paper's remark "if `n_c·d1 = k·s` then `(n_c + 1)·d1 ≠ k·s`"
/// implicitly assumes `s ∤ d1`; when `s | d1` both relative positions are
/// section-aligned (indeed the two streams are confined to one shared
/// section and can never exceed `b_eff = 1`), so that case is excluded
/// here explicitly.
#[must_use]
pub fn eq32_condition(geom: &Geometry, d1: u64, d2: u64) -> bool {
    let m = geom.banks();
    let d1 = d1 % m;
    let d2 = d2 % m;
    let f = gcd3(m, d1, d2);
    if f == 0 {
        return false;
    }
    if ((geom.bank_cycle() + 1) * d1).is_multiple_of(geom.sections()) {
        return false;
    }
    let diff = mod_reduce(d2 as i128 - d1 as i128, m);
    gcd(m / f, diff / f) >= 2 * (geom.bank_cycle() + 1)
}

/// How a same-CPU pair of streams relates under a sectioned memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionClass {
    /// A stream self-conflicts (`r < n_c`); outside the model's scope.
    SelfLimited,
    /// Both the access sets and the section sets are disjoint for the given
    /// start banks: no interaction at all, `b_eff = 2`.
    FullyDisjoint,
    /// Access sets disjoint (no bank interaction) but section sets shared:
    /// only section conflicts possible. `achievable` reports Theorem 8's
    /// necessary condition for a conflict-free relative position.
    DisjointBanksSharedSections {
        /// Theorem 8 condition `gcd(s, d2-d1) >= 2`.
        achievable: bool,
    },
    /// Nondisjoint access sets. `via` records which theorem (if any) shows a
    /// conflict-free relative position exists.
    SharedBanks {
        /// The route to conflict-freeness, if any.
        via: ConflictFreeRoute,
    },
}

/// Which result establishes that conflict-free start banks exist for a
/// same-CPU pair under sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictFreeRoute {
    /// Theorem 9: eq. 12 holds and `s ∤ n_c·d1`; relative start `n_c·d1`.
    Theorem9,
    /// Eq. 32: `s | n_c·d1` but the gcd bound is `>= 2(n_c+1)`; relative
    /// start `(n_c+1)·d1`.
    Eq32,
    /// No conflict-free relative position is predicted; `b_eff < 2`.
    None,
}

/// Full analysis of a same-CPU stream pair under a sectioned memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionAnalysis {
    /// Structural classification.
    pub class: SectionClass,
    /// Relative start position `b2 - b1 (mod m)` that realises the
    /// conflict-free cycle, when one is predicted.
    pub recommended_offset: Option<u64>,
    /// True when conflict-freeness is achievable but start-position
    /// dependent, so a fixed priority rule may trap badly positioned streams
    /// in a linked conflict (Fig. 8a). A cyclic priority rule (Fig. 8b) or
    /// consecutive-bank sections (Fig. 9) remove the risk.
    pub linked_conflict_risk: bool,
}

/// Analyses a same-CPU pair of streams under sections (`s <= m`).
#[must_use]
pub fn analyze_sectioned_pair(
    geom: &Geometry,
    s1: &StreamSpec,
    s2: &StreamSpec,
) -> SectionAnalysis {
    let nc = geom.bank_cycle();
    let m = geom.banks();
    if s1.return_number(geom) < nc || s2.return_number(geom) < nc {
        return SectionAnalysis {
            class: SectionClass::SelfLimited,
            recommended_offset: None,
            linked_conflict_risk: false,
        };
    }
    let (d1, d2) = (s1.distance, s2.distance);
    if access_sets_disjoint(geom, s1, s2) {
        if section_sets_disjoint(geom, s1, s2) {
            return SectionAnalysis {
                class: SectionClass::FullyDisjoint,
                recommended_offset: None,
                linked_conflict_risk: false,
            };
        }
        let achievable = thm8_condition(geom, d1, d2);
        return SectionAnalysis {
            class: SectionClass::DisjointBanksSharedSections { achievable },
            recommended_offset: None,
            linked_conflict_risk: achievable,
        };
    }
    if thm9_condition(geom, d1, d2) {
        return SectionAnalysis {
            class: SectionClass::SharedBanks {
                via: ConflictFreeRoute::Theorem9,
            },
            recommended_offset: Some((nc * d1) % m),
            linked_conflict_risk: true,
        };
    }
    if conflict_free_condition(geom, d1, d2) && eq32_condition(geom, d1, d2) {
        return SectionAnalysis {
            class: SectionClass::SharedBanks {
                via: ConflictFreeRoute::Eq32,
            },
            recommended_offset: Some(((nc + 1) * d1) % m),
            linked_conflict_risk: true,
        };
    }
    SectionAnalysis {
        class: SectionClass::SharedBanks {
            via: ConflictFreeRoute::None,
        },
        recommended_offset: None,
        linked_conflict_risk: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(geom: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(geom, b, d).unwrap()
    }

    #[test]
    fn fig7_case_eq32() {
        // Fig. 7: m = 12, s = 2, n_c = 2, d1 = d2 = 1. Theorem 9 fails
        // (n_c·d1 = 2 ≡ 0 (mod 2)) but eq. 32 holds (gcd(12, 0) = 12 >= 6):
        // conflict-free at relative start (n_c + 1)·d1 = 3.
        let g = Geometry::new(12, 2, 2).unwrap();
        assert!(!thm9_condition(&g, 1, 1));
        assert!(eq32_condition(&g, 1, 1));
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 1), &spec(&g, 3, 1));
        assert_eq!(
            a.class,
            SectionClass::SharedBanks {
                via: ConflictFreeRoute::Eq32
            }
        );
        assert_eq!(a.recommended_offset, Some(3));
        assert!(a.linked_conflict_risk);
    }

    #[test]
    fn fig8_case_linked_conflict_risk() {
        // Fig. 8: m = 12, s = 3, n_c = 3, d1 = d2 = 1: s | n_c·d1, and
        // eq. 32 holds (12 >= 8): conflict-free achievable at offset 4, but
        // simultaneous starts under fixed priority produce a linked conflict.
        let g = Geometry::new(12, 3, 3).unwrap();
        assert!(!thm9_condition(&g, 1, 1));
        assert!(eq32_condition(&g, 1, 1));
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 1), &spec(&g, 0, 1));
        assert_eq!(a.recommended_offset, Some(4));
        assert!(a.linked_conflict_risk);
    }

    #[test]
    fn theorem9_positive_case() {
        // m = 12, s = 4, n_c = 3, d1 = 1, d2 = 7: eq. 12 gives gcd(12,6) =
        // 6 >= 6, and n_c·d1 = 3 is not a multiple of s = 4 -> Theorem 9.
        let g = Geometry::new(12, 4, 3).unwrap();
        assert!(thm9_condition(&g, 1, 7));
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 1), &spec(&g, 3, 7));
        assert_eq!(
            a.class,
            SectionClass::SharedBanks {
                via: ConflictFreeRoute::Theorem9
            }
        );
        assert_eq!(a.recommended_offset, Some(3));
    }

    #[test]
    fn theorem8_condition_cases() {
        let g = Geometry::new(12, 4, 2).unwrap();
        assert!(thm8_condition(&g, 2, 4)); // gcd(4, 2) = 2
        assert!(!thm8_condition(&g, 2, 3)); // gcd(4, 1) = 1
        assert!(thm8_condition(&g, 3, 3)); // gcd(4, 0) = 4
        assert!(!thm8_condition(&g, 0, 3)); // gcd(4, 3) = 1
    }

    #[test]
    fn fully_disjoint_pair() {
        // m = 4, s = 2 (Fig. 1): d = 2 streams on opposite parities use
        // different banks *and* different sections.
        let g = Geometry::new(4, 2, 1).unwrap();
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 2), &spec(&g, 1, 2));
        assert_eq!(a.class, SectionClass::FullyDisjoint);
        assert!(!a.linked_conflict_risk);
    }

    #[test]
    fn disjoint_banks_shared_sections() {
        // m = 8, s = 2, d1 = d2 = 2, b2 - b1 = 1: banks disjoint (odd/even),
        // sections: stream 1 visits banks {0,2,4,6} -> section 0 only;
        // stream 2 visits {1,3,5,7} -> section 1 only. Disjoint sections too.
        let g = Geometry::new(8, 2, 2).unwrap();
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 2), &spec(&g, 1, 2));
        assert_eq!(a.class, SectionClass::FullyDisjoint);
        // For shared sections with disjoint banks take m = 12, s = 2,
        // d1 = d2 = 4, b2 - b1 = 2: stream 1 visits banks {0,4,8}, stream 2
        // {2,6,10} — disjoint — yet both sets map to section 0.
        let g2 = Geometry::new(12, 2, 2).unwrap();
        let a2 = analyze_sectioned_pair(&g2, &spec(&g2, 0, 4), &spec(&g2, 2, 4));
        match a2.class {
            SectionClass::DisjointBanksSharedSections { achievable } => {
                // gcd(s, d2 - d1) = gcd(2, 0) = 2 >= 2: achievable.
                assert!(achievable);
            }
            other => panic!("expected DisjointBanksSharedSections, got {other:?}"),
        }
    }

    #[test]
    fn self_limited_pair() {
        let g = Geometry::new(16, 4, 4).unwrap();
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 8), &spec(&g, 0, 1));
        assert_eq!(a.class, SectionClass::SelfLimited);
    }

    #[test]
    fn no_route_when_gcd_small() {
        // m = 12, s = 3, n_c = 3, d1 = 1, d2 = 2: gcd(12, 1) = 1 < 6 — not
        // even eq. 12 holds; no conflict-free route.
        let g = Geometry::new(12, 3, 3).unwrap();
        let a = analyze_sectioned_pair(&g, &spec(&g, 0, 1), &spec(&g, 5, 2));
        assert_eq!(
            a.class,
            SectionClass::SharedBanks {
                via: ConflictFreeRoute::None
            }
        );
        assert_eq!(a.recommended_offset, None);
    }
}
