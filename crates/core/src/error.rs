//! Error type for constructing model objects with invalid parameters.

use std::fmt;

/// Errors raised when model parameters violate the paper's assumptions
/// (section II): `s | m`, positive bank cycle time, distances reduced
/// modulo `m`, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The number of banks `m` must be positive.
    ZeroBanks,
    /// The number of sections `s` must be positive.
    ZeroSections,
    /// The paper assumes the sections evenly divide the banks (`s | m`).
    SectionsDontDivideBanks {
        /// Number of banks `m`.
        banks: u64,
        /// Number of sections `s`.
        sections: u64,
    },
    /// There cannot be more sections than banks (`s <= m`).
    MoreSectionsThanBanks {
        /// Number of banks `m`.
        banks: u64,
        /// Number of sections `s`.
        sections: u64,
    },
    /// The bank cycle time `n_c` must be at least one clock period.
    ZeroBankCycle,
    /// A start bank address must lie in `0..m`.
    StartBankOutOfRange {
        /// The offending start bank.
        start_bank: u64,
        /// Number of banks `m`.
        banks: u64,
    },
    /// A distance must lie in `0..m` ("distance with modulus d_i").
    DistanceOutOfRange {
        /// The offending distance.
        distance: u64,
        /// Number of banks `m`.
        banks: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroBanks => write!(f, "the number of banks m must be positive"),
            Self::ZeroSections => write!(f, "the number of sections s must be positive"),
            Self::SectionsDontDivideBanks { banks, sections } => write!(
                f,
                "sections must divide banks (s | m), got s = {sections}, m = {banks}"
            ),
            Self::MoreSectionsThanBanks { banks, sections } => write!(
                f,
                "cannot have more sections than banks, got s = {sections}, m = {banks}"
            ),
            Self::ZeroBankCycle => write!(f, "the bank cycle time n_c must be positive"),
            Self::StartBankOutOfRange { start_bank, banks } => write!(
                f,
                "start bank {start_bank} out of range for m = {banks} banks"
            ),
            Self::DistanceOutOfRange { distance, banks } => write!(
                f,
                "distance {distance} out of range for m = {banks} banks (reduce modulo m)"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::SectionsDontDivideBanks {
            banks: 12,
            sections: 5,
        };
        assert!(e.to_string().contains("s = 5"));
        assert!(e.to_string().contains("m = 12"));
        let e = ModelError::DistanceOutOfRange {
            distance: 20,
            banks: 16,
        };
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::ZeroBanks);
    }
}
