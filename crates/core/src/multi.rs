//! More than two access streams.
//!
//! The paper analyses one and two streams and observes for its six-port
//! experiment that "access conflicts are bound to occur since
//! `6·n_c = 24 > 16`, i.e., 16 banks are not sufficient to support all
//! access requests in parallel." This module generalises the easy
//! directions:
//!
//! * a **necessary** capacity condition for `p` streams at full bandwidth:
//!   `p · n_c <= m` (every granted request occupies a bank for `n_c`
//!   periods, and at most `m` bank-periods exist per clock period — plus
//!   the per-section path bound when the streams share a CPU);
//! * a **constructive** placement for equal-distance families (the
//!   background workload of the triad experiment): `p` streams of distance
//!   `d` are conflict-free when their start banks are spaced along the
//!   stream's own bank walk with time-gaps of at least `n_c` in both
//!   directions — and, under sections, when the `p` simultaneous requests
//!   always land in `p` distinct sections;
//! * a pairwise classification matrix as a (non-exact) screening tool.

use crate::geometry::Geometry;
use crate::numtheory::gcd;
use crate::pair::{classify_pair, PairClass};
use crate::stream::StreamSpec;

/// Necessary conditions for `p` concurrent streams to all run at full
/// bandwidth (one word per port per clock period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityCheck {
    /// `p · n_c <= m`: enough bank-periods per clock period.
    pub banks_sufficient: bool,
    /// `p <= s` when all ports are on one CPU: enough access paths.
    pub paths_sufficient: bool,
}

impl CapacityCheck {
    /// True when both necessary conditions hold.
    #[must_use]
    pub fn possible(&self) -> bool {
        self.banks_sufficient && self.paths_sufficient
    }
}

/// Capacity check for `p` streams; `same_cpu` selects whether the
/// per-CPU path bound applies.
///
/// ```
/// use vecmem_analytic::{Geometry, multi::capacity_check};
/// let xmp = Geometry::cray_xmp();
/// // The paper: "6 n_c = 24 > 16, i.e., 16 banks are not sufficient".
/// assert!(!capacity_check(&xmp, 6, false).possible());
/// assert!(capacity_check(&xmp, 4, false).possible());
/// ```
#[must_use]
pub fn capacity_check(geom: &Geometry, p: u64, same_cpu: bool) -> CapacityCheck {
    CapacityCheck {
        banks_sufficient: p * geom.bank_cycle() <= geom.banks(),
        paths_sufficient: !same_cpu || p <= geom.sections(),
    }
}

/// Constructs start banks for `p` conflict-free streams of equal distance
/// `d` on one CPU, or `None` when no such placement exists under the
/// constructive spacing scheme.
///
/// The placement puts stream `i` at `b_i = i · g · spacing` where
/// `g = gcd(m, d)`... in fact placement proceeds along the bank walk of a
/// distance-`d` stream: consecutive streams are `spacing` *steps* apart on
/// that walk (i.e. `spacing` clock periods apart in phase). Requirements:
///
/// * `spacing >= n_c` and `r - (p-1)·spacing >= n_c` (both wrap-around
///   directions of every pairwise phase gap are at least the bank cycle);
/// * under sections, the simultaneous requests of the `p` streams are
///   `spacing·d (mod s)`-spaced banks: they must fall in `p` distinct
///   sections.
///
/// Returns the start banks in port order.
#[must_use]
pub fn equal_distance_family(geom: &Geometry, d: u64, p: u64) -> Option<Vec<u64>> {
    if p == 0 {
        return Some(Vec::new());
    }
    let m = geom.banks();
    let nc = geom.bank_cycle();
    let d = d % m;
    let spec = StreamSpec {
        start_bank: 0,
        distance: d,
    };
    let r = spec.return_number(geom);
    if p == 1 {
        return if r >= nc { Some(vec![0]) } else { None };
    }
    // Try every phase spacing; all p streams share one residue walk.
    for spacing in nc..=r.saturating_sub(nc) / (p - 1).max(1) {
        if (p - 1) * spacing > r || r - (p - 1) * spacing < nc {
            continue;
        }
        // Simultaneous requests are at banks k·d + i·spacing·d (mod m); the
        // i-th and j-th differ by (i-j)·spacing·d. Distinct sections for
        // all pairs requires (i-j)·spacing·d ≢ 0 (mod s) for 0 < |i-j| < p.
        let s = geom.sections();
        let step = (spacing % m) * d % m;
        let distinct_sections = (1..p).all(|k| !(k * step).is_multiple_of(s));
        if !geom.is_unsectioned() && !distinct_sections {
            continue;
        }
        let starts = (0..p)
            .map(|i| (i as u128 * spacing as u128 % m as u128 * d as u128 % m as u128) as u64)
            .collect();
        return Some(starts);
    }
    None
}

/// Summary of a pairwise screening of `p` streams.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseScreen {
    /// Classification of each unordered pair `(i, j)`, `i < j`.
    pub pairs: Vec<(usize, usize, PairClass)>,
    /// True when every pair is individually conflict-free. (Necessary but
    /// NOT sufficient for the whole family to be conflict-free: three
    /// pairwise-compatible streams can still collide through transitive
    /// displacement — use the simulator for the exact answer.)
    pub all_pairs_conflict_free: bool,
}

/// Classifies every pair among the given streams (cross-CPU semantics).
#[must_use]
pub fn pairwise_screen(geom: &Geometry, specs: &[StreamSpec]) -> PairwiseScreen {
    let mut pairs = Vec::new();
    let mut all_cf = true;
    for i in 0..specs.len() {
        for j in (i + 1)..specs.len() {
            let class = classify_pair(geom, &specs[i], &specs[j], true);
            all_cf &= class.is_conflict_free();
            pairs.push((i, j, class));
        }
    }
    PairwiseScreen {
        pairs,
        all_pairs_conflict_free: all_cf,
    }
}

/// An upper bound on the aggregate bandwidth of `p` streams with distances
/// `ds`: the capacity bound `m / n_c` combined with each stream's solo
/// bound `min(1, r_i/n_c)` and, for same-CPU placement, the path bound `s`.
#[must_use]
pub fn bandwidth_upper_bound(geom: &Geometry, ds: &[u64], same_cpu: bool) -> f64 {
    let m = geom.banks() as f64;
    let nc = geom.bank_cycle() as f64;
    let solo_sum: f64 = ds
        .iter()
        .map(|&d| {
            let r = geom.return_number(d) as f64;
            (r / nc).min(1.0)
        })
        .sum();
    let mut bound = solo_sum.min(m / nc);
    if same_cpu {
        bound = bound.min(geom.sections() as f64);
    }
    bound
}

/// The distances of a stream family reduced to the set of distinct
/// residue-class generators `gcd(m, d)` — streams sharing a generator live
/// on overlapping bank walks.
#[must_use]
pub fn residue_generators(geom: &Geometry, ds: &[u64]) -> Vec<u64> {
    let m = geom.banks();
    let mut gens: Vec<u64> = ds.iter().map(|&d| gcd(m, d % m)).collect();
    gens.sort_unstable();
    gens.dedup();
    gens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_check_paper_example() {
        // Paper §IV: six ports on the X-MP: 6·4 = 24 > 16 banks.
        let geom = Geometry::cray_xmp();
        let check = capacity_check(&geom, 6, false);
        assert!(!check.banks_sufficient);
        assert!(!check.possible());
        // Four ports would fit: 4·4 = 16 <= 16.
        assert!(capacity_check(&geom, 4, false).banks_sufficient);
        // Same-CPU path bound: the X-MP has s = 4 sections, so up to 4
        // same-CPU ports can be served per clock period.
        assert!(capacity_check(&geom, 4, true).paths_sufficient);
        assert!(!capacity_check(&geom, 5, true).paths_sufficient);
    }

    #[test]
    fn equal_distance_family_background_workload() {
        // The triad experiment's background: three unit-stride streams on
        // the X-MP CPU. A valid placement exists and respects both gaps.
        let geom = Geometry::cray_xmp();
        let starts = equal_distance_family(&geom, 1, 3).expect("placement exists");
        assert_eq!(starts.len(), 3);
        // Pairwise phase gaps (for d = 1 the start bank IS the phase).
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= 4);
        }
        assert!(16 - (sorted[2] - sorted[0]) >= 4);
        // Distinct sections each clock period.
        let s: Vec<u64> = starts.iter().map(|&b| geom.section_of(b)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn equal_distance_family_impossible_when_overcommitted() {
        // m = 8, n_c = 4: two d = 1 streams fit (gaps 4/4), three cannot
        // (3 gaps of >= 4 need r >= 12 > 8).
        let geom = Geometry::unsectioned(8, 4).unwrap();
        assert!(equal_distance_family(&geom, 1, 2).is_some());
        assert!(equal_distance_family(&geom, 1, 3).is_none());
        // Self-conflicting distance: even one stream fails.
        let geom2 = Geometry::unsectioned(8, 4).unwrap();
        assert!(equal_distance_family(&geom2, 4, 1).is_none());
    }

    #[test]
    fn family_placements_simulate_conflict_free() {
        // Cross-validated in tests/multi_stream.rs; here just shape checks.
        let geom = Geometry::new(24, 4, 3).unwrap();
        for p in 1..=4 {
            if let Some(starts) = equal_distance_family(&geom, 1, p) {
                assert_eq!(starts.len() as u64, p);
                let mut uniq = starts.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len() as u64, p, "starts must be distinct");
            }
        }
    }

    #[test]
    fn pairwise_screen_matrix() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 1,
                distance: 7,
            },
            StreamSpec {
                start_bank: 2,
                distance: 2,
            },
        ];
        let screen = pairwise_screen(&geom, &specs);
        assert_eq!(screen.pairs.len(), 3);
        // (1, 7) is conflict-free; (1, 2) is not; overall flag false.
        assert!(!screen.all_pairs_conflict_free);
        let cf_pairs: Vec<(usize, usize)> = screen
            .pairs
            .iter()
            .filter(|(_, _, c)| c.is_conflict_free())
            .map(|&(i, j, _)| (i, j))
            .collect();
        assert!(cf_pairs.contains(&(0, 1)));
    }

    #[test]
    fn upper_bound_combines_constraints() {
        let geom = Geometry::cray_xmp(); // m/nc = 4
                                         // Six full-rate streams: capped by banks at 4.
        assert_eq!(bandwidth_upper_bound(&geom, &[1; 6], false), 4.0);
        // Two streams, one self-limited (d = 8, r = 2): 1 + 0.5.
        assert_eq!(bandwidth_upper_bound(&geom, &[1, 8], false), 1.5);
        // Same-CPU: path bound s = 4 also applies.
        assert_eq!(bandwidth_upper_bound(&geom, &[1; 6], true), 4.0);
        let geom2 = Geometry::new(16, 2, 4).unwrap();
        assert_eq!(bandwidth_upper_bound(&geom2, &[1; 6], true), 2.0);
    }

    #[test]
    fn residue_generator_reduction() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        assert_eq!(residue_generators(&geom, &[1, 5, 7]), vec![1]);
        assert_eq!(residue_generators(&geom, &[2, 4, 8]), vec![2, 4]);
        assert_eq!(residue_generators(&geom, &[0, 6]), vec![6, 12]);
    }
}
