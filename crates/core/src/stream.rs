//! Access streams: the unit of analysis in vector mode.
//!
//! A single vector memory instruction activates a port that transfers `n`
//! equally spaced data. Stream `i` is characterised (paper §III) by the
//! address `b_i` of its start bank, its distance `d_i` (the stride reduced
//! modulo `m`), its return number `r_i` (Theorem 1) and its access set `Z_i`.
//! The `(k+1)`-th request of the stream goes to bank `(b_i + k·d_i) mod m`.

use crate::error::ModelError;
use crate::geometry::Geometry;
use crate::numtheory::gcd;

/// Specification of an (infinitely long) equally spaced access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    /// Address `b` of the start bank, in `0..m`.
    pub start_bank: u64,
    /// Distance `d` (stride modulo `m`), in `0..m`.
    pub distance: u64,
}

impl StreamSpec {
    /// Creates a stream spec, validating both fields against the geometry.
    ///
    /// # Errors
    /// Returns an error when `start_bank` or `distance` lies outside
    /// `0..m` for the geometry.
    pub fn new(geom: &Geometry, start_bank: u64, distance: u64) -> Result<Self, ModelError> {
        geom.check_start_bank(start_bank)?;
        geom.check_distance(distance)?;
        Ok(Self {
            start_bank,
            distance,
        })
    }

    /// Creates a stream spec from an arbitrary storage address and stride,
    /// reducing both modulo `m`. Convenient when working from array layouts.
    #[must_use]
    pub fn from_address(geom: &Geometry, address: u64, stride: u64) -> Self {
        Self {
            start_bank: geom.bank_of(address),
            distance: stride % geom.banks(),
        }
    }

    /// Bank address of the `(k+1)`-th access request: `(b + k·d) mod m`.
    #[must_use]
    pub fn bank_at(&self, geom: &Geometry, k: u64) -> u64 {
        let m = geom.banks();
        ((self.start_bank as u128 + k as u128 * self.distance as u128) % m as u128) as u64
    }

    /// Return number `r = m / gcd(m, d)` (Theorem 1): the number of accesses
    /// made before the stream requests the same bank again.
    #[must_use]
    pub fn return_number(&self, geom: &Geometry) -> u64 {
        geom.return_number(self.distance)
    }

    /// True when the stream conflicts with *itself*: the return to the start
    /// bank happens before the bank is free again (`r < n_c`, §III-A).
    #[must_use]
    pub fn self_conflicting(&self, geom: &Geometry) -> bool {
        self.return_number(geom) < geom.bank_cycle()
    }

    /// The access set `Z`: the `r` distinct bank addresses the stream visits,
    /// in visiting order starting at the start bank.
    #[must_use]
    pub fn access_set(&self, geom: &Geometry) -> Vec<u64> {
        let r = self.return_number(geom);
        (0..r).map(|k| self.bank_at(geom, k)).collect()
    }

    /// The section set: all section addresses the stream visits (sorted,
    /// deduplicated). Used for Theorem 8.
    #[must_use]
    pub fn section_set(&self, geom: &Geometry) -> Vec<u64> {
        let mut sections: Vec<u64> = self
            .access_set(geom)
            .into_iter()
            .map(|bank| geom.section_of(bank))
            .collect();
        sections.sort_unstable();
        sections.dedup();
        sections
    }

    /// Effective bandwidth of this stream running *alone* (§III-A):
    /// `1` if `r >= n_c`, else `r / n_c` (as an exact rational, returned as
    /// a `(numerator, denominator)` pair by [`Self::solo_bandwidth`]).
    #[must_use]
    pub fn solo_bandwidth(&self, geom: &Geometry) -> f64 {
        let r = self.return_number(geom);
        let nc = geom.bank_cycle();
        if r >= nc {
            1.0
        } else {
            r as f64 / nc as f64
        }
    }

    /// Exact rational form of [`Self::solo_bandwidth`]: `(r, n_c)` clamped to
    /// at most 1, i.e. `min(r, n_c) / n_c` reduced... returned unreduced as
    /// `(min(r, n_c), n_c)` so callers can compare exactly.
    #[must_use]
    pub fn solo_bandwidth_ratio(&self, geom: &Geometry) -> (u64, u64) {
        let r = self.return_number(geom);
        let nc = geom.bank_cycle();
        (r.min(nc), nc)
    }
}

/// True when the access sets of two streams are disjoint for the *given*
/// start banks.
///
/// `Z_i = { b_i + t · gcd(m, d_i) mod m }`, so the two sets intersect iff
/// `f = gcd(m, d1, d2)` divides `b2 - b1`.
#[must_use]
pub fn access_sets_disjoint(geom: &Geometry, s1: &StreamSpec, s2: &StreamSpec) -> bool {
    let m = geom.banks();
    let f = gcd(gcd(m, s1.distance), s2.distance);
    if f <= 1 {
        return false; // Theorem 2: with f = 1 the sets always intersect.
    }
    let delta = (s2.start_bank + m - s1.start_bank) % m;
    !delta.is_multiple_of(f)
}

/// True when the section sets of two streams are disjoint for the given
/// start banks (needed to rule out section conflicts entirely).
#[must_use]
pub fn section_sets_disjoint(geom: &Geometry, s1: &StreamSpec, s2: &StreamSpec) -> bool {
    let z1 = s1.section_set(geom);
    let z2 = s2.section_set(geom);
    z1.iter().all(|s| !z2.contains(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    #[test]
    fn bank_sequence() {
        let g = geom(12, 3);
        let s = StreamSpec::new(&g, 2, 7).unwrap();
        assert_eq!(s.bank_at(&g, 0), 2);
        assert_eq!(s.bank_at(&g, 1), 9);
        assert_eq!(s.bank_at(&g, 2), 4);
        assert_eq!(s.bank_at(&g, 12), 2); // r = 12 for d = 7, m = 12
    }

    #[test]
    fn return_number_matches_theorem1_brute_force() {
        // r is the smallest j - k with (b + j d) ≡ (b + k d) (mod m); verify
        // against a brute-force scan for every (m, d) up to 40 banks.
        for m in 1..=40u64 {
            let g = geom(m, 1);
            for d in 0..m {
                let s = StreamSpec::new(&g, 0, d).unwrap();
                let r = s.return_number(&g);
                // Brute force: first revisit of the start bank.
                let mut steps = 1;
                while s.bank_at(&g, steps) != s.start_bank {
                    steps += 1;
                }
                assert_eq!(r, steps, "m={m} d={d}");
            }
        }
    }

    #[test]
    fn access_set_has_return_number_distinct_elements() {
        let g = geom(16, 4);
        for d in 0..16 {
            let s = StreamSpec::new(&g, 3, d).unwrap();
            let z = s.access_set(&g);
            assert_eq!(z.len() as u64, s.return_number(&g));
            let mut sorted = z.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), z.len(), "elements must be distinct, d={d}");
        }
    }

    #[test]
    fn self_conflict_detection() {
        // m = 16, n_c = 4: d = 8 gives r = 2 < 4 (self-conflicting);
        // d = 4 gives r = 4 = n_c (not self-conflicting).
        let g = geom(16, 4);
        assert!(StreamSpec::new(&g, 0, 8).unwrap().self_conflicting(&g));
        assert!(!StreamSpec::new(&g, 0, 4).unwrap().self_conflicting(&g));
        assert!(StreamSpec::new(&g, 0, 0).unwrap().self_conflicting(&g));
    }

    #[test]
    fn solo_bandwidth_section_iii_a() {
        let g = geom(16, 4);
        // r >= n_c: full bandwidth of 1 word per clock.
        assert_eq!(StreamSpec::new(&g, 0, 1).unwrap().solo_bandwidth(&g), 1.0);
        // d = 8: r = 2 < n_c = 4, bandwidth r / n_c = 0.5.
        assert_eq!(StreamSpec::new(&g, 0, 8).unwrap().solo_bandwidth(&g), 0.5);
        // d = 0: r = 1, bandwidth 0.25.
        assert_eq!(StreamSpec::new(&g, 0, 0).unwrap().solo_bandwidth(&g), 0.25);
        assert_eq!(
            StreamSpec::new(&g, 0, 8).unwrap().solo_bandwidth_ratio(&g),
            (2, 4)
        );
    }

    #[test]
    fn disjoint_access_sets_require_common_factor() {
        // Theorem 2: disjoint sets achievable iff gcd(m, d1, d2) > 1; and for
        // given starts the sets are disjoint iff f does not divide b2 - b1.
        let g = geom(12, 3);
        let s1 = StreamSpec::new(&g, 0, 2).unwrap();
        let s2 = StreamSpec::new(&g, 1, 4).unwrap(); // f = 2, b2-b1 = 1 odd
        assert!(access_sets_disjoint(&g, &s1, &s2));
        let s2_even = StreamSpec::new(&g, 2, 4).unwrap(); // b2-b1 = 2 even
        assert!(!access_sets_disjoint(&g, &s1, &s2_even));
        // f = 1: never disjoint regardless of starts.
        let t1 = StreamSpec::new(&g, 0, 1).unwrap();
        let t2 = StreamSpec::new(&g, 5, 4).unwrap();
        assert!(!access_sets_disjoint(&g, &t1, &t2));
    }

    #[test]
    fn disjointness_matches_brute_force() {
        for m in 2..=24u64 {
            let g = geom(m, 2);
            for d1 in 0..m {
                for d2 in 0..m {
                    for b2 in 0..m {
                        let s1 = StreamSpec::new(&g, 0, d1).unwrap();
                        let s2 = StreamSpec::new(&g, b2, d2).unwrap();
                        let z1 = s1.access_set(&g);
                        let z2 = s2.access_set(&g);
                        let brute = z1.iter().all(|b| !z2.contains(b));
                        assert_eq!(
                            access_sets_disjoint(&g, &s1, &s2),
                            brute,
                            "m={m} d1={d1} d2={d2} b2={b2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn section_sets() {
        // Fig. 1 geometry: m = 4, s = 2. A stream with d = 2 stays within one
        // section; two such streams on opposite parities have disjoint
        // section sets.
        let g = Geometry::new(4, 2, 1).unwrap();
        let s1 = StreamSpec::new(&g, 0, 2).unwrap();
        let s2 = StreamSpec::new(&g, 1, 2).unwrap();
        assert_eq!(s1.section_set(&g), vec![0]);
        assert_eq!(s2.section_set(&g), vec![1]);
        assert!(section_sets_disjoint(&g, &s1, &s2));
        let s3 = StreamSpec::new(&g, 0, 1).unwrap();
        assert_eq!(s3.section_set(&g), vec![0, 1]);
        assert!(!section_sets_disjoint(&g, &s1, &s3));
    }

    #[test]
    fn from_address_reduces_modulo_m() {
        let g = Geometry::cray_xmp();
        let s = StreamSpec::from_address(&g, 16 * 1024 + 1, 18);
        assert_eq!(s.start_bank, 1);
        assert_eq!(s.distance, 2);
    }

    #[test]
    fn invalid_specs_rejected() {
        let g = geom(8, 2);
        assert!(StreamSpec::new(&g, 8, 0).is_err());
        assert!(StreamSpec::new(&g, 0, 8).is_err());
        assert!(StreamSpec::new(&g, 7, 7).is_ok());
    }
}
