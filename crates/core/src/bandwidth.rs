//! Top-level effective-bandwidth predictions.
//!
//! Ties together the single-stream result (§III-A), the two-stream
//! classification (§III-B) and the sectioned analysis into one entry point.
//! The maximum bandwidth of a memory system is `b_w = p` (the number of
//! ports); the effective bandwidth `b_eff <= b_w` is the average number of
//! data transferred per clock period in the cyclic steady state.

use crate::geometry::Geometry;
use crate::pair::{classify_pair, PairClass};
use crate::ratio::Ratio;
use crate::sections::{analyze_sectioned_pair, SectionAnalysis};
use crate::stream::StreamSpec;

/// Whether two concurrent streams share an access path bottleneck.
///
/// Streams from different CPUs each have their own path into every section,
/// so for them "access paths are not a bottleneck, i.e. s = m" (paper
/// §III-B); streams from the same CPU share paths when `s < m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPlacement {
    /// The two ports belong to different CPUs (simultaneous bank conflicts
    /// possible, section conflicts impossible).
    DifferentCpus,
    /// The two ports belong to the same CPU (section conflicts possible,
    /// simultaneous bank conflicts impossible).
    SameCpu,
}

/// Prediction for a pair of concurrent streams.
#[derive(Debug, Clone, PartialEq)]
pub enum PairPrediction {
    /// `s = m` semantics applied (different CPUs, or unsectioned memory).
    Unsectioned(PairClass),
    /// Same-CPU pair under a sectioned memory.
    Sectioned(SectionAnalysis),
}

impl PairPrediction {
    /// Exact steady-state bandwidth when the model predicts one
    /// unconditionally (i.e. independent of anything not already given).
    #[must_use]
    pub fn predicted_bandwidth(&self) -> Option<Ratio> {
        match self {
            Self::Unsectioned(class) => class.predicted_bandwidth(),
            Self::Sectioned(analysis) => match analysis.class {
                crate::sections::SectionClass::FullyDisjoint => Some(Ratio::integer(2)),
                _ => None,
            },
        }
    }
}

/// Predicts the effective bandwidth of a single stream (§III-A):
/// `b_eff = 1` for `r >= n_c`, else `r/n_c`.
#[must_use]
pub fn predict_single(geom: &Geometry, spec: &StreamSpec) -> Ratio {
    let (num, den) = spec.solo_bandwidth_ratio(geom);
    Ratio::new(num, den)
}

/// Predicts the interaction of two concurrent streams.
#[must_use]
pub fn predict_pair(
    geom: &Geometry,
    s1: &StreamSpec,
    s2: &StreamSpec,
    placement: PortPlacement,
) -> PairPrediction {
    match placement {
        PortPlacement::DifferentCpus => {
            PairPrediction::Unsectioned(classify_pair(geom, s1, s2, true))
        }
        PortPlacement::SameCpu if geom.is_unsectioned() => {
            // s = m: each bank is its own section; the dynamics match the
            // unsectioned analysis (a same-bank collision is resolved by the
            // same priority rule, merely *counted* as a section conflict).
            PairPrediction::Unsectioned(classify_pair(geom, s1, s2, true))
        }
        PortPlacement::SameCpu => PairPrediction::Sectioned(analyze_sectioned_pair(geom, s1, s2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::PairClass;
    use crate::sections::{ConflictFreeRoute, SectionClass};

    #[test]
    fn single_stream_predictions() {
        let g = Geometry::cray_xmp(); // m = 16, n_c = 4
        let unit = StreamSpec::new(&g, 0, 1).unwrap();
        assert_eq!(predict_single(&g, &unit), Ratio::integer(1));
        let eight = StreamSpec::new(&g, 0, 8).unwrap();
        assert_eq!(predict_single(&g, &eight), Ratio::new(1, 2));
        let zero = StreamSpec::new(&g, 0, 0).unwrap();
        assert_eq!(predict_single(&g, &zero), Ratio::new(1, 4));
    }

    #[test]
    fn different_cpus_use_unsectioned_analysis() {
        // Even on the sectioned X-MP geometry, cross-CPU pairs see s = m
        // semantics: d1 = 1, d2 = 7 with m = 16, n_c = 4 gives gcd(16, 6) =
        // 2 < 8 -> not conflict-free; but d1 = 1, d2 = 9: gcd(16, 8) = 8 >= 8.
        let g = Geometry::cray_xmp();
        let s1 = StreamSpec::new(&g, 0, 1).unwrap();
        let s9 = StreamSpec::new(&g, 3, 9).unwrap();
        let p = predict_pair(&g, &s1, &s9, PortPlacement::DifferentCpus);
        assert_eq!(p, PairPrediction::Unsectioned(PairClass::ConflictFree));
        assert_eq!(p.predicted_bandwidth(), Some(Ratio::integer(2)));
    }

    #[test]
    fn same_cpu_sectioned_analysis() {
        let g = Geometry::new(12, 2, 2).unwrap();
        let s1 = StreamSpec::new(&g, 0, 1).unwrap();
        let s2 = StreamSpec::new(&g, 3, 1).unwrap();
        let p = predict_pair(&g, &s1, &s2, PortPlacement::SameCpu);
        match p {
            PairPrediction::Sectioned(a) => {
                assert_eq!(
                    a.class,
                    SectionClass::SharedBanks {
                        via: ConflictFreeRoute::Eq32
                    }
                );
            }
            other => panic!("expected sectioned analysis, got {other:?}"),
        }
    }

    #[test]
    fn same_cpu_unsectioned_geometry_falls_back() {
        let g = Geometry::unsectioned(12, 3).unwrap();
        let s1 = StreamSpec::new(&g, 0, 1).unwrap();
        let s2 = StreamSpec::new(&g, 0, 7).unwrap();
        let p = predict_pair(&g, &s1, &s2, PortPlacement::SameCpu);
        assert_eq!(p, PairPrediction::Unsectioned(PairClass::ConflictFree));
    }
}
