//! # vecmem-analytic
//!
//! Analytical model of the **effective bandwidth of interleaved memories in
//! vector processor systems**, reproducing
//!
//! > W. Oed and O. Lange, *"On the Effective Bandwidth of Interleaved
//! > Memories in Vector Processor Systems"*, IEEE Transactions on Computers,
//! > vol. C-34, no. 10, pp. 949–957, October 1985.
//!
//! An `m`-way interleaved memory is accessed by ports operating in vector
//! mode: port *i* starts at bank `b_i` and steps through the banks with
//! distance `d_i`, issuing one request per clock period. A granted bank is
//! busy for `n_c` clock periods. This crate answers, *without simulation*:
//!
//! * what bandwidth does a single stream achieve? ([`stream::StreamSpec::solo_bandwidth`])
//! * can two concurrent streams run conflict-free? (Theorems 2, 3 —
//!   [`pair::conflict_free_condition`])
//! * when does one stream form a *barrier* that starves the other, and what
//!   bandwidth results? (Theorems 4–7, eq. 29 — [`pair::classify_pair`])
//! * how do memory *sections* (shared access paths) change the picture?
//!   (Theorems 8, 9, eq. 32 — [`sections::analyze_sectioned_pair`])
//! * which strides and array dimensions are safe? ([`planner`])
//!
//! The companion crate `vecmem-banksim` provides the cycle-accurate
//! simulator these predictions are validated against (the role played in
//! the paper by measurements on the 2-CPU, 16-bank Cray X-MP at KFA Jülich).
//!
//! ## Quick example
//!
//! ```
//! use vecmem_analytic::{Geometry, StreamSpec};
//! use vecmem_analytic::pair::{classify_pair, PairClass};
//!
//! // Fig. 2 of the paper: 12 banks, bank cycle 3, distances 1 and 7.
//! let geom = Geometry::unsectioned(12, 3).unwrap();
//! let s1 = StreamSpec::new(&geom, 0, 1).unwrap();
//! let s2 = StreamSpec::new(&geom, 0, 7).unwrap();
//! assert_eq!(classify_pair(&geom, &s1, &s2, true), PairClass::ConflictFree);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bandwidth;
pub mod barrier;
pub mod error;
pub mod exact;
pub mod geometry;
pub mod isomorphism;
pub mod multi;
pub mod numtheory;
pub mod pair;
pub mod planner;
pub mod ratio;
pub mod sections;
pub mod spectrum;
pub mod stream;

pub use bandwidth::{predict_pair, predict_single, PairPrediction, PortPlacement};
pub use error::ModelError;
pub use geometry::{Geometry, SectionMapping};
pub use pair::PairClass;
pub use ratio::Ratio;
pub use stream::StreamSpec;
