//! Exact two-stream steady states by direct state-space iteration.
//!
//! This is the paper's own argument made executable: "the possible memory
//! states are finite, and some cyclic state will be reached" (§III,
//! assumption 1). For two cross-path streams the complete state is the
//! vector of remaining bank busy times plus each stream's current bank;
//! iterating the §II rules until a state repeats yields the asymptotic
//! bandwidth as an exact rational.
//!
//! The implementation is deliberately **independent** of the
//! `vecmem-banksim` engine (no shared arbitration code): the two are
//! cross-validated against each other in the workspace integration tests,
//! so an error in either implementation of the §II semantics would
//! surface as a disagreement.

use crate::geometry::Geometry;
use crate::ratio::Ratio;
use crate::stream::StreamSpec;
use std::collections::HashMap;

/// State key: bank busy residues plus each stream's current bank.
type StateKey = (Vec<u8>, u64, u64);
/// Recorded first visit: (clock period, stream-1 grants, stream-2 grants).
type Visit = (u64, u64, u64);

/// Exact cyclic-state summary for a pair of streams on different access
/// paths (`s = m` semantics, stream 1 wins simultaneous conflicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactPairSteady {
    /// Combined effective bandwidth.
    pub beff: Ratio,
    /// Stream 1's share.
    pub stream1: Ratio,
    /// Stream 2's share.
    pub stream2: Ratio,
    /// Cycle length of the steady state.
    pub period: u64,
    /// Clock periods before the cycle is entered.
    pub transient: u64,
}

/// Iterates the two-stream system until its state recurs.
///
/// ```
/// use vecmem_analytic::{Geometry, StreamSpec, Ratio, exact::exact_pair_steady};
/// let geom = Geometry::unsectioned(13, 6).unwrap();
/// let s1 = StreamSpec::new(&geom, 0, 1).unwrap();
/// let s2 = StreamSpec::new(&geom, 0, 6).unwrap();
/// // Fig. 3's barrier-situation: b_eff = 1 + d1/d2 = 7/6.
/// assert_eq!(exact_pair_steady(&geom, &s1, &s2).beff, Ratio::new(7, 6));
/// ```
///
/// Semantics (paper §II, cross-CPU):
/// * each stream requests its current bank every clock period;
/// * a request to a busy bank is delayed (bank conflict);
/// * both requesting the same idle bank: stream 1 proceeds, stream 2 is
///   delayed (simultaneous bank conflict, fixed priority);
/// * a granted bank stays busy for `n_c` periods.
#[must_use]
pub fn exact_pair_steady(geom: &Geometry, s1: &StreamSpec, s2: &StreamSpec) -> ExactPairSteady {
    let m = geom.banks() as usize;
    let nc = geom.bank_cycle() as u8;
    let mut busy = vec![0u8; m];
    let (mut k1, mut k2) = (0u64, 0u64); // elements granted so far
    let mut seen: HashMap<StateKey, Visit> = HashMap::new();
    let mut t = 0u64;
    loop {
        let b1 = s1.bank_at(geom, k1) as usize;
        let b2 = s2.bank_at(geom, k2) as usize;
        let key = (busy.clone(), b1 as u64, b2 as u64);
        if let Some(&(t0, g1, g2)) = seen.get(&key) {
            let period = t - t0;
            let d1 = k1 - g1;
            let d2 = k2 - g2;
            return ExactPairSteady {
                beff: Ratio::new(d1 + d2, period),
                stream1: Ratio::new(d1, period),
                stream2: Ratio::new(d2, period),
                period,
                transient: t0,
            };
        }
        seen.insert(key, (t, k1, k2));

        // Advance bank clocks BEFORE the grant check so that a bank granted
        // at clock period t becomes available again exactly at t + n_c.
        for b in busy.iter_mut() {
            *b = b.saturating_sub(1);
        }
        let grant1 = busy[b1] == 0;
        let grant2 = busy[b2] == 0 && !(grant1 && b1 == b2);
        if grant1 {
            busy[b1] = nc;
            k1 += 1;
        }
        if grant2 {
            busy[b2] = nc;
            k2 += 1;
        }
        t += 1;
    }
}

/// Iterates the two-stream system with **shared access paths** (both
/// streams on one CPU, `s <= m` sections) until its state recurs.
///
/// Semantics (paper §II, same-CPU):
/// * a request to a busy bank is delayed (bank conflict);
/// * two requests to idle banks in the same section (including the same
///   bank) contend for the single access path: stream 1 proceeds, stream 2
///   is delayed (section conflict, fixed priority).
#[must_use]
pub fn exact_pair_steady_sectioned(
    geom: &Geometry,
    s1: &StreamSpec,
    s2: &StreamSpec,
) -> ExactPairSteady {
    let m = geom.banks() as usize;
    let nc = geom.bank_cycle() as u8;
    let mut busy = vec![0u8; m];
    let (mut k1, mut k2) = (0u64, 0u64);
    let mut seen: HashMap<StateKey, Visit> = HashMap::new();
    let mut t = 0u64;
    loop {
        let b1 = s1.bank_at(geom, k1) as usize;
        let b2 = s2.bank_at(geom, k2) as usize;
        let key = (busy.clone(), b1 as u64, b2 as u64);
        if let Some(&(t0, g1, g2)) = seen.get(&key) {
            let period = t - t0;
            let d1 = k1 - g1;
            let d2 = k2 - g2;
            return ExactPairSteady {
                beff: Ratio::new(d1 + d2, period),
                stream1: Ratio::new(d1, period),
                stream2: Ratio::new(d2, period),
                period,
                transient: t0,
            };
        }
        seen.insert(key, (t, k1, k2));

        for b in busy.iter_mut() {
            *b = b.saturating_sub(1);
        }
        let grant1 = busy[b1] == 0;
        let same_path = geom.section_of(b1 as u64) == geom.section_of(b2 as u64);
        let grant2 = busy[b2] == 0 && !(grant1 && same_path);
        if grant1 {
            busy[b1] = nc;
            k1 += 1;
        }
        if grant2 {
            busy[b2] = nc;
            k2 += 1;
        }
        t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[test]
    fn fig2_conflict_free() {
        let g = geom(12, 3);
        let r = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 1, 7));
        assert_eq!(r.beff, Ratio::integer(2));
        assert_eq!(r.stream1, Ratio::integer(1));
        assert_eq!(r.stream2, Ratio::integer(1));
    }

    #[test]
    fn fig3_barrier() {
        let g = geom(13, 6);
        let r = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 0, 6));
        assert_eq!(r.beff, Ratio::new(7, 6));
        assert_eq!(r.stream1, Ratio::integer(1));
        assert_eq!(r.stream2, Ratio::new(1, 6));
    }

    #[test]
    fn fig5_and_fig6_barrier_directions() {
        let g = geom(13, 4);
        let normal = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 7, 3));
        assert_eq!(normal.beff, Ratio::new(4, 3));
        assert_eq!(normal.stream1, Ratio::integer(1));
        let inverted = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 1, 3));
        assert_eq!(inverted.stream2, Ratio::integer(1));
        assert!(inverted.stream1 < Ratio::integer(1));
    }

    #[test]
    fn simultaneous_conflict_priority() {
        // Both streams hammer bank 0: stream 1 always wins; stream 2 is
        // granted only at the instants stream 1's bank is busy... which
        // never happens for d = 0: stream 2 is starved.
        let g = geom(4, 2);
        let r = exact_pair_steady(&g, &spec(&g, 0, 0), &spec(&g, 0, 0));
        assert_eq!(r.stream1, Ratio::new(1, 2)); // r = 1, n_c = 2 self-limit
        assert_eq!(r.stream2, Ratio::integer(0));
    }

    #[test]
    fn matches_single_stream_formula_when_other_is_disjoint() {
        // d1 = 2 (even banks), d2 = 2 from an odd bank: fully disjoint, so
        // both achieve their solo rates.
        let g = geom(12, 4);
        let r = exact_pair_steady(&g, &spec(&g, 0, 2), &spec(&g, 1, 2));
        assert_eq!(r.beff, Ratio::integer(2));
    }

    #[test]
    fn period_divides_structure() {
        let g = geom(12, 3);
        let r = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 1, 7));
        assert!(r.period > 0);
        // In a conflict-free cycle both streams advance once per period
        // cycle: grants per period = period each.
        assert_eq!(r.stream1, Ratio::integer(1));
    }

    #[test]
    fn fig7_sectioned_conflict_free() {
        let g = Geometry::new(12, 2, 2).unwrap();
        let r = exact_pair_steady_sectioned(&g, &spec(&g, 0, 1), &spec(&g, 3, 1));
        assert_eq!(r.beff, Ratio::integer(2));
    }

    #[test]
    fn fig8a_sectioned_linked_conflict() {
        let g = Geometry::new(12, 3, 3).unwrap();
        let r = exact_pair_steady_sectioned(&g, &spec(&g, 0, 1), &spec(&g, 1, 1));
        assert_eq!(r.beff, Ratio::new(3, 2));
    }

    #[test]
    fn sectioned_same_bank_is_section_semantics() {
        // With s = m the sectioned solver must agree with the cross-path
        // one (a same-bank collision resolves identically either way).
        let g = Geometry::unsectioned(12, 3).unwrap();
        for d2 in 0..12 {
            let a = exact_pair_steady(&g, &spec(&g, 0, 1), &spec(&g, 0, d2));
            let b = exact_pair_steady_sectioned(&g, &spec(&g, 0, 1), &spec(&g, 0, d2));
            assert_eq!(a, b, "d2 = {d2}");
        }
    }
}
