//! Two concurrent access streams, equal number of sections and banks
//! (paper §III-B, Theorems 2–7).
//!
//! This module classifies a pair of streams coming from *different access
//! paths* (different CPUs, or `s = m`), where the possible conflicts are bank
//! conflicts and simultaneous bank conflicts. The classification predicts the
//! steady-state effective bandwidth exactly where the paper does:
//!
//! * disjoint access sets → `b_eff = 2` (no interaction at all);
//! * Theorem 3 satisfied → conflict-free cycle from **any** relative start
//!   ("synchronization") → `b_eff = 2`;
//! * unique barrier-situation (Theorems 6/7) → `b_eff = 1 + d1/d2` (eq. 29)
//!   from any relative start;
//! * barrier possible but not unique (Theorem 4 without 6/7) → `b_eff < 2`,
//!   exact value depends on the relative start banks;
//! * otherwise → conflicting cycle with `b_eff < 2`.

use crate::geometry::Geometry;
use crate::isomorphism::{canonicalize, CanonicalPair};
use crate::numtheory::{ceil_div, gcd, gcd3, mod_reduce};
use crate::ratio::Ratio;
use crate::stream::{access_sets_disjoint, StreamSpec};

/// Outcome of the two-stream analysis for given start banks and distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairClass {
    /// At least one stream conflicts with itself (`r < n_c`); outside the
    /// scope of the paper's two-stream theorems.
    SelfLimited,
    /// The access sets are disjoint for these start banks: the streams never
    /// touch a common bank, `b_eff = 2`.
    DisjointSets,
    /// Theorem 3 holds: the streams synchronise into a conflict-free cycle
    /// regardless of the relative start banks, `b_eff = 2` in steady state.
    ConflictFree,
    /// A unique barrier-situation (Theorem 6 or 7): one stream runs
    /// conflict-free, the other is periodically delayed; `b_eff = 1 + d1/d2`
    /// (eq. 29) in canonical units, independent of the start banks.
    UniqueBarrier {
        /// The canonical form used for the prediction.
        canonical: CanonicalPair,
        /// Predicted effective bandwidth, `1 + d1/d2`.
        beff: Ratio,
    },
    /// Theorem 4 holds but the barrier is not unique: depending on the start
    /// banks the streams reach a barrier one way or the other, or (when
    /// Theorem 5 fails) a double conflict; `b_eff < 2`.
    BarrierPossible {
        /// Canonical form in which Theorem 4 was established.
        canonical: CanonicalPair,
        /// True when Theorem 5's bound fails, i.e. mutual ("double")
        /// conflicts can occur for unlucky start banks (paper Fig. 4).
        double_conflict_possible: bool,
        /// Bandwidth of the barrier steady state *if* a barrier is reached.
        barrier_beff: Ratio,
    },
    /// Conflicting cycle not covered by the barrier theorems; `b_eff < 2`.
    Conflicting,
}

impl PairClass {
    /// Exact steady-state bandwidth when the model predicts one.
    #[must_use]
    pub fn predicted_bandwidth(&self) -> Option<Ratio> {
        match self {
            Self::DisjointSets | Self::ConflictFree => Some(Ratio::integer(2)),
            Self::UniqueBarrier { beff, .. } => Some(*beff),
            Self::SelfLimited | Self::BarrierPossible { .. } | Self::Conflicting => None,
        }
    }

    /// True when the class guarantees `b_eff = 2` (no conflicts in steady
    /// state, from these start banks).
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        matches!(self, Self::DisjointSets | Self::ConflictFree)
    }
}

/// Theorem 2: disjoint access sets can be achieved (by suitable start banks)
/// iff `gcd(m, d1, d2) > 1`.
#[must_use]
pub fn disjoint_sets_achievable(geom: &Geometry, d1: u64, d2: u64) -> bool {
    let m = geom.banks();
    gcd3(m, d1 % m, d2 % m) > 1
}

/// Theorem 3: with nondisjoint access sets (and `s = m`), start banks making
/// the streams conflict-free exist iff
/// `gcd(m/f, (d2 - d1)/f) >= 2·n_c` with `f = gcd(m, d1, d2)`.
///
/// ```
/// use vecmem_analytic::{Geometry, pair::conflict_free_condition};
/// let geom = Geometry::unsectioned(12, 3).unwrap();
/// assert!(conflict_free_condition(&geom, 1, 7));  // Fig. 2
/// assert!(!conflict_free_condition(&geom, 1, 2)); // gcd(12, 1) = 1 < 6
/// ```
///
/// When it holds, the streams also *synchronise*: they fall into the
/// conflict-free cycle from any relative starting position.
#[must_use]
pub fn conflict_free_condition(geom: &Geometry, d1: u64, d2: u64) -> bool {
    let m = geom.banks();
    let d1 = d1 % m;
    let d2 = d2 % m;
    let f = gcd3(m, d1, d2);
    if f == 0 {
        return false;
    }
    let diff = mod_reduce(d2 as i128 - d1 as i128, m);
    debug_assert_eq!(diff % f, 0, "f divides d2 - d1 modulo m");
    // gcd(m, 0) = m covers the equal-distance case: conflict-free iff
    // r = m/f >= 2 n_c.
    gcd(m / f, diff / f) >= 2 * geom.bank_cycle()
}

/// Theorem 4 (via eq. 20 of its proof): given the canonical pair
/// (`d1 | m`, `d2 > d1`), start banks leading to a barrier-situation exist iff
/// `d2' ≡ d1' + c (mod m'/d1')` for some `1 <= c < n_c`, where `x' = x/f`.
///
/// Preconditions from the theorem: `r1 >= 2 n_c`, `r2 > n_c` and nondisjoint
/// access sets; the caller checks those.
#[must_use]
pub fn barrier_condition(geom: &Geometry, canonical: &CanonicalPair) -> bool {
    let m = geom.banks();
    let nc = geom.bank_cycle();
    let f = gcd3(m, canonical.d1, canonical.d2);
    let (m1, d1, d2) = (m / f, canonical.d1 / f, canonical.d2 / f);
    debug_assert_eq!(m1 % d1, 0, "canonical d1' divides m'");
    let m2 = m1 / d1; // m'' of the proof
    for c in 1..nc {
        if d2 % m2 == (d1 + c) % m2 {
            return true;
        }
    }
    false
}

/// Theorem 5: a double conflict (mutual delays) is *never* encountered if
/// `(n_c - 1)(d2 + d1) < m` (canonical units).
#[must_use]
pub fn no_double_conflict_condition(geom: &Geometry, canonical: &CanonicalPair) -> bool {
    let nc = geom.bank_cycle();
    (nc - 1) * (canonical.d2 + canonical.d1) < geom.banks()
}

/// Theorem 6: given Theorem 4, the barrier is unique (reached from any start
/// banks) if `(2 n_c - 1)·d2 <= m` (canonical units).
#[must_use]
pub fn unique_barrier_thm6(geom: &Geometry, canonical: &CanonicalPair) -> bool {
    (2 * geom.bank_cycle() - 1) * canonical.d2 <= geom.banks()
}

/// Theorem 7 (with the eq. 28 refinement): given Theorems 4 and 5 but not 6,
/// the barrier is still unique if, in primed units (`x' = x/f`),
/// `k = ⌈m'/(d1'·d2')⌉·d1' < 2 n_c` and
/// `k·d2' mod m'  <  (k - n_c)·d1' mod m'`
/// (or `=` when stream 1 — the barrier-forming stream — has priority, in
/// which case the tie is broken by a simultaneous bank conflict in stream
/// 1's favour).
#[must_use]
pub fn unique_barrier_thm7(
    geom: &Geometry,
    canonical: &CanonicalPair,
    stream1_has_priority: bool,
) -> bool {
    let m = geom.banks();
    let nc = geom.bank_cycle();
    let f = gcd3(m, canonical.d1, canonical.d2);
    let (m1, d1, d2) = (m / f, canonical.d1 / f, canonical.d2 / f);
    if d1 == 0 || d2 == 0 {
        return false;
    }
    let k = ceil_div(m1, d1 * d2) * d1;
    if k >= 2 * nc {
        return false;
    }
    let lhs = (k as u128 * d2 as u128 % m1 as u128) as u64;
    let rhs = mod_reduce(k as i128 - nc as i128, m1) * d1 % m1;
    lhs < rhs || (stream1_has_priority && lhs == rhs)
}

/// Eq. 29: effective bandwidth of a unique barrier-situation,
/// `b_eff = 1 + d1/d2` in canonical units.
#[must_use]
pub fn barrier_bandwidth(canonical: &CanonicalPair) -> Ratio {
    Ratio::new(canonical.d1 + canonical.d2, canonical.d2)
}

/// Classifies a pair of streams on different access paths (`s = m`
/// semantics) with concrete start banks.
///
/// `stream1_has_priority` selects whether the barrier-forming canonical
/// stream wins simultaneous bank conflicts (fixed priority with the
/// barrier stream first); it only affects the eq.-28 boundary of Theorem 7.
#[must_use]
pub fn classify_pair(
    geom: &Geometry,
    s1: &StreamSpec,
    s2: &StreamSpec,
    stream1_has_priority: bool,
) -> PairClass {
    let nc = geom.bank_cycle();
    let (r1, r2) = (s1.return_number(geom), s2.return_number(geom));
    if r1 < nc || r2 < nc {
        return PairClass::SelfLimited;
    }
    if access_sets_disjoint(geom, s1, s2) {
        return PairClass::DisjointSets;
    }
    if conflict_free_condition(geom, s1.distance, s2.distance) {
        return PairClass::ConflictFree;
    }
    if let Some(canonical) = canonicalize(geom, s1.distance, s2.distance) {
        // Theorem 4 preconditions in canonical units: the barrier-forming
        // stream must not self-conflict across the 2 n_c window and the
        // delayed stream must outlast one bank cycle.
        let rc1 = geom.return_number(canonical.d1);
        let rc2 = geom.return_number(canonical.d2);
        if rc1 >= 2 * nc && rc2 > nc && barrier_condition(geom, &canonical) {
            let no_double = no_double_conflict_condition(geom, &canonical);
            // Eq. 28's equality refinement needs the *canonical* barrier
            // stream (d1) to win simultaneous bank conflicts; if the pair
            // was swapped during canonicalisation, the hardware priority
            // sits with the other stream.
            let canonical_priority = if canonical.swapped {
                !stream1_has_priority
            } else {
                stream1_has_priority
            };
            let unique = unique_barrier_thm6(geom, &canonical)
                || (no_double && unique_barrier_thm7(geom, &canonical, canonical_priority));
            let beff = barrier_bandwidth(&canonical);
            if unique {
                return PairClass::UniqueBarrier { canonical, beff };
            }
            return PairClass::BarrierPossible {
                canonical,
                double_conflict_possible: !no_double,
                barrier_beff: beff,
            };
        }
    }
    PairClass::Conflicting
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(geom: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(geom, b, d).unwrap()
    }

    #[test]
    fn theorem2_examples() {
        let g = geom(12, 3);
        assert!(disjoint_sets_achievable(&g, 2, 4)); // gcd(12,2,4) = 2
        assert!(disjoint_sets_achievable(&g, 3, 6)); // gcd = 3
        assert!(!disjoint_sets_achievable(&g, 1, 7)); // gcd = 1
        assert!(!disjoint_sets_achievable(&g, 2, 3)); // gcd = 1
    }

    #[test]
    fn theorem3_fig2_case() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7: gcd(12, 6) = 6 >= 2·3.
        let g = geom(12, 3);
        assert!(conflict_free_condition(&g, 1, 7));
        // d1 = 1, d2 = 2: gcd(12, 1) = 1 < 6.
        assert!(!conflict_free_condition(&g, 1, 2));
    }

    #[test]
    fn theorem3_equal_distances() {
        // gcd(m, 0) = m: equal distances are conflict-free iff r >= 2 n_c.
        let g = geom(16, 4);
        assert!(conflict_free_condition(&g, 1, 1)); // r = 16 >= 8
        assert!(conflict_free_condition(&g, 3, 3));
        let g2 = geom(16, 4);
        // d = 2: f = 2, gcd(16/2, 0) = 8 >= 2·n_c = 8: conflict-free (boundary).
        assert!(conflict_free_condition(&g2, 2, 2));
        let g3 = geom(12, 4);
        // d = 2: f = 2, gcd(6, 0) = 6 < 8: conflicting.
        assert!(!conflict_free_condition(&g3, 2, 2));
    }

    #[test]
    fn theorem3_symmetry() {
        let g = geom(24, 3);
        for d1 in 0..24 {
            for d2 in 0..24 {
                assert_eq!(
                    conflict_free_condition(&g, d1, d2),
                    conflict_free_condition(&g, d2, d1),
                    "Theorem 3 must be symmetric in d1, d2 ({d1}, {d2})"
                );
            }
        }
    }

    #[test]
    fn fig3_case_barrier_possible_with_double_conflict() {
        // Fig. 3 / Fig. 4: m = 13, n_c = 6, d1 = 1, d2 = 6. A barrier exists
        // (Fig. 3) but b2 = 1 leads to a double conflict (Fig. 4): Theorem 5
        // fails ((n_c-1)(d1+d2) = 35 >= 13).
        let g = geom(13, 6);
        let class = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 0, 6), true);
        match class {
            PairClass::BarrierPossible {
                double_conflict_possible,
                barrier_beff,
                ..
            } => {
                assert!(double_conflict_possible);
                assert_eq!(barrier_beff, Ratio::new(7, 6));
            }
            other => panic!("expected BarrierPossible, got {other:?}"),
        }
    }

    #[test]
    fn fig5_case_barrier_possible_no_double_conflict() {
        // Fig. 5 / Fig. 6: m = 13, n_c = 4, d1 = 1, d2 = 3. Theorem 5 holds
        // ((4-1)·4 = 12 < 13) so no double conflict, but neither Theorem 6
        // ((2·4-1)·3 = 21 > 13) nor Theorem 7 (2 < 1 fails) gives uniqueness:
        // the barrier direction depends on the start banks (Figs. 5 vs 6).
        let g = geom(13, 4);
        let class = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 7, 3), true);
        match class {
            PairClass::BarrierPossible {
                double_conflict_possible,
                barrier_beff,
                ..
            } => {
                assert!(!double_conflict_possible);
                assert_eq!(barrier_beff, Ratio::new(4, 3));
            }
            other => panic!("expected BarrierPossible, got {other:?}"),
        }
    }

    #[test]
    fn theorem6_unique_barrier() {
        // m = 16, n_c = 2, d1 = 1, d2 = 2: Thm 4 (d2 ≡ d1 + 1 (mod 16)) and
        // Thm 6 ((2·2-1)·2 = 6 <= 16): unique barrier, b_eff = 3/2.
        let g = geom(16, 2);
        let class = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 5, 2), true);
        match class {
            PairClass::UniqueBarrier { beff, canonical } => {
                assert_eq!(beff, Ratio::new(3, 2));
                assert_eq!((canonical.d1, canonical.d2), (1, 2));
            }
            other => panic!("expected UniqueBarrier, got {other:?}"),
        }
    }

    #[test]
    fn theorem7_unique_barrier() {
        // m = 13, n_c = 4, d1 = 1, d2 = 2: Thm 6 fails (7·2 = 14 > 13) but
        // Thm 7 holds: k = ⌈13/2⌉·1 = 7 < 8, 7·2 mod 13 = 1 < (7-4)·1 = 3.
        let g = geom(13, 4);
        let canonical = canonicalize(&g, 1, 2).unwrap();
        assert!(barrier_condition(&g, &canonical));
        assert!(no_double_conflict_condition(&g, &canonical));
        assert!(!unique_barrier_thm6(&g, &canonical));
        assert!(unique_barrier_thm7(&g, &canonical, false));
        let class = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 4, 2), false);
        match class {
            PairClass::UniqueBarrier { beff, .. } => assert_eq!(beff, Ratio::new(3, 2)),
            other => panic!("expected UniqueBarrier, got {other:?}"),
        }
    }

    #[test]
    fn self_limited_detection() {
        let g = geom(16, 4);
        // d = 8 has r = 2 < 4.
        assert_eq!(
            classify_pair(&g, &spec(&g, 0, 8), &spec(&g, 1, 1), true),
            PairClass::SelfLimited
        );
        assert_eq!(
            classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 1, 0), true),
            PairClass::SelfLimited
        );
    }

    #[test]
    fn disjoint_sets_classification() {
        // m = 12, d1 = d2 = 2, b2 - b1 odd: even/odd banks, never interact —
        // even though Theorem 3 fails for d = 2 (gcd(6,0) = 6 < 2·4).
        let g = geom(12, 4);
        assert_eq!(
            classify_pair(&g, &spec(&g, 0, 2), &spec(&g, 1, 2), true),
            PairClass::DisjointSets
        );
        // Same distances but b2 - b1 even: nondisjoint, r = 6 < 2·n_c = 8 ->
        // conflicting.
        assert_ne!(
            classify_pair(&g, &spec(&g, 0, 2), &spec(&g, 2, 2), true),
            PairClass::DisjointSets
        );
    }

    #[test]
    fn predicted_bandwidth_accessor() {
        let g = geom(12, 3);
        let cf = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 0, 7), true);
        assert_eq!(cf.predicted_bandwidth(), Some(Ratio::integer(2)));
        assert!(cf.is_conflict_free());
        let conflicting = classify_pair(&g, &spec(&g, 0, 1), &spec(&g, 0, 1), true);
        // d1 = d2 = 1: r = 12 >= 6 -> conflict-free too (Theorem 3 with
        // gcd(12, 0) = 12 >= 6).
        assert!(conflicting.is_conflict_free());
    }

    #[test]
    fn barrier_condition_uses_proof_eq20_not_literal_eq17() {
        // m = 24, n_c = 3, d1 = 2, d2 = 14 (f = 2): in primed units d2' = 7,
        // m'' = 12, and 7 ∉ {2, 3} (mod 12): no barrier. The literal reading
        // of eq. (17) would wrongly accept this case.
        let g = geom(24, 3);
        let canonical = CanonicalPair {
            d1: 2,
            d2: 14,
            multiplier: 1,
            swapped: false,
        };
        assert!(!barrier_condition(&g, &canonical));
        // m = 24, n_c = 4, d1 = 2, d2 = 8 (f = 2): d2' = 4 ≡ d1' + 3, c = 3 < 4.
        let g2 = geom(24, 4);
        let canonical2 = CanonicalPair {
            d1: 2,
            d2: 8,
            multiplier: 1,
            swapped: false,
        };
        assert!(barrier_condition(&g2, &canonical2));
    }

    #[test]
    fn nc_one_never_barriers() {
        // With n_c = 1 a bank is free again the next clock period: bank
        // conflicts (and hence barriers) cannot arise.
        let g = geom(12, 1);
        let canonical = canonicalize(&g, 1, 2).unwrap();
        assert!(!barrier_condition(&g, &canonical));
    }
}
