//! Elementary number theory used throughout the analytical model.
//!
//! Everything in the Oed & Lange model reduces to modular arithmetic over the
//! bank count `m`: return numbers are `m / gcd(m, d)` (Theorem 1), conflict
//! freeness is a gcd condition on stride differences (Theorem 3), and the
//! isomorphism of distance pairs (Appendix) needs modular inverses.

/// Greatest common divisor (Euclid). By convention `gcd(0, 0) == 0` and
/// `gcd(a, 0) == a`, which matches the paper's use of `gcd(m, 0) = m` for
/// equal distances (`d2 - d1 = 0`).
///
/// ```
/// use vecmem_analytic::numtheory::gcd;
/// assert_eq!(gcd(16, 6), 2);
/// assert_eq!(gcd(12, 0), 12); // the paper's equal-distance convention
/// ```
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of three values.
#[must_use]
pub fn gcd3(a: u64, b: u64, c: u64) -> u64 {
    gcd(gcd(a, b), c)
}

/// Least common multiple. Panics on overflow in debug builds; the model only
/// ever calls this with values bounded by the bank count.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)`.
#[must_use]
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        return (a, 1, 0);
    }
    let (g, x, y) = extended_gcd(b, a % b);
    (g, y, x - (a / b) * y)
}

/// Modular inverse of `a` modulo `n`, if it exists (i.e. `gcd(a, n) == 1`).
#[must_use]
pub fn mod_inverse(a: u64, n: u64) -> Option<u64> {
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0);
    }
    let (g, x, _) = extended_gcd(a as i128, n as i128);
    if g != 1 {
        return None;
    }
    Some((x.rem_euclid(n as i128)) as u64)
}

/// `a mod n` for possibly-negative `a`, with result in `0..n`.
#[must_use]
pub fn mod_reduce(a: i128, n: u64) -> u64 {
    debug_assert!(n > 0, "modulus must be positive");
    (a.rem_euclid(n as i128)) as u64
}

/// Ceiling division `⌈a / b⌉` for positive `b`.
#[must_use]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0, "divisor must be positive");
    a.div_ceil(b)
}

/// True when `a` and `b` are relatively prime.
#[must_use]
pub fn coprime(a: u64, b: u64) -> bool {
    gcd(a, b) == 1
}

/// All positive divisors of `n`, in ascending order. `n` must be positive.
#[must_use]
pub fn divisors(n: u64) -> Vec<u64> {
    assert!(n > 0, "divisors of 0 are not defined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            small.push(i);
            if i != n / i {
                large.push(n / i);
            }
        }
        i += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Finds the smallest `k >= 1` with `gcd(k, n) == 1` and
/// `k * a ≡ target (mod n)`, if one exists.
///
/// This is the renumbering multiplier used by the distance isomorphism
/// (paper Appendix): bank addresses may be relabelled by any unit `k`
/// modulo `m` without changing conflict behaviour.
#[must_use]
pub fn unit_multiplier_to(a: u64, target: u64, n: u64) -> Option<u64> {
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(1);
    }
    // k*a ≡ target (mod n) is solvable iff gcd(a, n) | target; among the
    // solutions we need one coprime to n. The solution set is an arithmetic
    // progression with step n/gcd(a,n); scan it (bounded by n steps).
    let g = gcd(a % n, n);
    if g == 0 {
        // a ≡ 0: only target ≡ 0 works, and then any unit does.
        return if target.is_multiple_of(n) {
            Some(1)
        } else {
            None
        };
    }
    if !target.is_multiple_of(g) {
        return None;
    }
    let n_g = n / g;
    let a_g = (a % n) / g;
    let t_g = (target % n) / g;
    let inv = mod_inverse(a_g % n_g, n_g)?;
    let k0 = (inv as u128 * t_g as u128 % n_g as u128) as u64;
    // Candidates: k0 + j * n_g for j in 0..g (all residues mod n).
    for j in 0..g {
        let k = (k0 + j * n_g) % n;
        if k != 0 && coprime(k, n) {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(8, 12), 4);
        assert_eq!(gcd(13, 6), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(16, 16), 16);
    }

    #[test]
    fn gcd_of_zero_distance_is_modulus() {
        // The paper relies on gcd(m, 0) = m so that equal distances
        // (d2 - d1 = 0) satisfy Theorem 3 whenever r >= 2 n_c.
        assert_eq!(gcd(12, 0), 12);
    }

    #[test]
    fn gcd3_basics() {
        assert_eq!(gcd3(12, 8, 6), 2);
        assert_eq!(gcd3(12, 4, 8), 4);
        assert_eq!(gcd3(7, 5, 3), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(13, 6), 78);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 7), 7);
    }

    #[test]
    fn extended_gcd_identity() {
        for &(a, b) in &[(240i128, 46i128), (13, 6), (12, 8), (1, 1), (17, 0)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(a * x + b * y, g);
            assert_eq!(g, gcd(a as u64, b as u64) as i128);
        }
    }

    #[test]
    fn mod_inverse_basics() {
        assert_eq!(mod_inverse(3, 7), Some(5)); // 3*5 = 15 ≡ 1 (mod 7)
        assert_eq!(mod_inverse(7, 12), Some(7)); // 49 ≡ 1 (mod 12)
        assert_eq!(mod_inverse(4, 12), None);
        assert_eq!(mod_inverse(1, 1), Some(0));
        assert_eq!(mod_inverse(5, 0), None);
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for n in 2..60u64 {
            for a in 1..n {
                if let Some(inv) = mod_inverse(a, n) {
                    assert_eq!(a * inv % n, 1, "a={a} n={n}");
                    assert!(coprime(a, n));
                } else {
                    assert!(!coprime(a, n));
                }
            }
        }
    }

    #[test]
    fn mod_reduce_negative() {
        assert_eq!(mod_reduce(-3, 13), 10);
        assert_eq!(mod_reduce(-13, 13), 0);
        assert_eq!(mod_reduce(15, 13), 2);
        assert_eq!(mod_reduce(0, 5), 0);
    }

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(13, 6), 3);
        assert_eq!(ceil_div(12, 6), 2);
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
    }

    #[test]
    fn divisors_basics() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(13), vec![1, 13]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "divisors of 0")]
    fn divisors_of_zero_panics() {
        let _ = divisors(0);
    }

    #[test]
    fn unit_multiplier_examples_from_appendix() {
        // Paper Appendix, m = 16: 1 ⊕ 3 ≡ 5 ⊕ 15 ≡ 11 ⊕ 1 (mod 16).
        // Mapping d2 = 3 to 1 requires k = 11 (3 * 11 = 33 ≡ 1).
        let k = unit_multiplier_to(3, 1, 16).unwrap();
        assert_eq!(3 * k % 16, 1);
        assert!(coprime(k, 16));
        // 2 ⊕ 3 ≡ 6 ⊕ 9 ≡ 6 ⊕ 1 (mod 16): k = 11 maps 3 -> 1 and 2 -> 6.
        assert_eq!(2 * k % 16, 6);
    }

    #[test]
    fn unit_multiplier_maps_to_gcd() {
        // For each (d, m) we can relabel so the distance becomes gcd(m, d).
        for m in 2..40u64 {
            for d in 1..m {
                let g = gcd(m, d);
                let k = unit_multiplier_to(d, g, m)
                    .unwrap_or_else(|| panic!("no unit multiplier for d={d} m={m}"));
                assert_eq!(k * d % m, g, "d={d} m={m} k={k}");
                assert!(coprime(k, m));
            }
        }
    }

    #[test]
    fn unit_multiplier_unsolvable() {
        // 4k ≡ 1 (mod 12) has no solution since gcd(4,12) = 4 does not divide 1.
        assert_eq!(unit_multiplier_to(4, 1, 12), None);
        // d = 0: only target 0 is reachable.
        assert_eq!(unit_multiplier_to(0, 0, 12), Some(1));
        assert_eq!(unit_multiplier_to(0, 3, 12), None);
    }
}
