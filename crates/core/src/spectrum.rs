//! Bandwidth spectrum: how the classification distributes over a whole
//! geometry's design space.
//!
//! For machine designers the per-pair theorems aggregate into questions
//! like "what fraction of stride pairs on this memory can run at full
//! bandwidth?" and "how much does doubling the banks buy?". This module
//! counts classifications over all distance pairs (and, optionally, start
//! banks) of a geometry.

use crate::geometry::Geometry;
use crate::pair::{classify_pair, PairClass};
use crate::stream::StreamSpec;

/// Counts of pair classifications over a swept design space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Spectrum {
    /// Pairs with at least one self-conflicting stream.
    pub self_limited: u64,
    /// Pairs with disjoint access sets (for the swept start banks).
    pub disjoint_sets: u64,
    /// Theorem-3 conflict-free pairs.
    pub conflict_free: u64,
    /// Unique barrier-situations.
    pub unique_barrier: u64,
    /// Start-dependent barrier situations.
    pub barrier_possible: u64,
    /// Other conflicting pairs.
    pub conflicting: u64,
}

impl Spectrum {
    /// Total pairs counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.self_limited
            + self.disjoint_sets
            + self.conflict_free
            + self.unique_barrier
            + self.barrier_possible
            + self.conflicting
    }

    /// Fraction of pairs guaranteed to reach `b_eff = 2` (disjoint or
    /// conflict-free).
    #[must_use]
    pub fn full_bandwidth_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.disjoint_sets + self.conflict_free) as f64 / self.total() as f64
    }

    /// Adds another spectrum's counts into this one (used to merge the
    /// per-`d1` partial sums of a fanned-out census).
    pub fn merge(&mut self, other: &Spectrum) {
        self.self_limited += other.self_limited;
        self.disjoint_sets += other.disjoint_sets;
        self.conflict_free += other.conflict_free;
        self.unique_barrier += other.unique_barrier;
        self.barrier_possible += other.barrier_possible;
        self.conflicting += other.conflicting;
    }

    fn record(&mut self, class: &PairClass) {
        match class {
            PairClass::SelfLimited => self.self_limited += 1,
            PairClass::DisjointSets => self.disjoint_sets += 1,
            PairClass::ConflictFree => self.conflict_free += 1,
            PairClass::UniqueBarrier { .. } => self.unique_barrier += 1,
            PairClass::BarrierPossible { .. } => self.barrier_possible += 1,
            PairClass::Conflicting => self.conflicting += 1,
        }
    }
}

/// Classifies all distance pairs `1 <= d1, d2 < m` with start banks 0
/// (distance classes only; start-dependence folded into the classes).
#[must_use]
pub fn distance_spectrum(geom: &Geometry) -> Spectrum {
    let m = geom.banks();
    let mut spectrum = Spectrum::default();
    for d1 in 1..m {
        for d2 in 1..m {
            let s1 = StreamSpec {
                start_bank: 0,
                distance: d1,
            };
            let s2 = StreamSpec {
                start_bank: 0,
                distance: d2,
            };
            spectrum.record(&classify_pair(geom, &s1, &s2, true));
        }
    }
    spectrum
}

/// Classifies the `(d1, d2, b2)` triples for the given `d1` values: the
/// per-slice worker of the full design-space census. `vecmem-exec` fans
/// these slices out over its runner; summing the partial spectra with
/// [`Spectrum::merge`] yields the full census.
#[must_use]
pub fn full_spectrum_slice(geom: &Geometry, d1s: &[u64]) -> Spectrum {
    let m = geom.banks();
    let mut local = Spectrum::default();
    for &d1 in d1s {
        for d2 in 1..m {
            for b2 in 0..m {
                let s1 = StreamSpec {
                    start_bank: 0,
                    distance: d1,
                };
                let s2 = StreamSpec {
                    start_bank: b2,
                    distance: d2,
                };
                local.record(&classify_pair(geom, &s1, &s2, true));
            }
        }
    }
    local
}

/// Classifies all `(d1, d2, b2)` triples — the full design space including
/// relative start positions — in a single thread.
///
/// The parallel version lives in `vecmem-exec` (`full_spectrum` there fans
/// the [`full_spectrum_slice`] workers out over its work-stealing runner);
/// this serial form remains as the reference implementation the runner's
/// determinism tests compare against.
#[must_use]
pub fn full_spectrum(geom: &Geometry) -> Spectrum {
    let d1s: Vec<u64> = (1..geom.banks()).collect();
    full_spectrum_slice(geom, &d1s)
}

/// Sweeps bank counts at fixed `n_c` and reports each geometry's
/// full-bandwidth fraction: the "how much does doubling the banks buy?"
/// curve.
#[must_use]
pub fn bank_scaling_curve(bank_counts: &[u64], nc: u64) -> Vec<(u64, f64)> {
    bank_counts
        .iter()
        .filter_map(|&m| {
            let geom = Geometry::unsectioned(m, nc).ok()?;
            Some((m, distance_spectrum(&geom).full_bandwidth_fraction()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_totals() {
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let s = distance_spectrum(&geom);
        assert_eq!(s.total(), 11 * 11);
        let f = full_spectrum(&geom);
        assert_eq!(f.total(), 11 * 11 * 12);
    }

    #[test]
    fn known_classes_present() {
        // m = 12, n_c = 3 contains Fig. 2's conflict-free pair (1, 7) and
        // self-limited distances (d = 6: r = 2 < 3, d = 0 excluded).
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let s = distance_spectrum(&geom);
        assert!(s.conflict_free > 0);
        assert!(s.self_limited > 0);
        assert!(s.conflicting > 0);
    }

    #[test]
    fn faster_banks_help() {
        // At fixed m, lowering n_c relaxes Theorem 3's 2·n_c threshold:
        // the guaranteed-full-bandwidth fraction is monotone in n_c.
        // (Adding banks at fixed n_c and aligned starts barely moves the
        // fraction — the gcd condition is scale-free — which is itself a
        // finding the curve exposes.)
        let m = 24;
        let mut prev = 1.1;
        for nc in [1u64, 2, 3, 4, 6] {
            let geom = Geometry::unsectioned(m, nc).unwrap();
            let frac = distance_spectrum(&geom).full_bandwidth_fraction();
            assert!(frac <= prev, "fraction must not increase with n_c");
            prev = frac;
        }
        // Even at n_c = 1 not every pair is conflict-free: simultaneous
        // bank conflicts recur whenever gcd(m/f, Δ/f) = 1 (the streams keep
        // meeting at a common bank in the same clock period).
        let geom = Geometry::unsectioned(24, 1).unwrap();
        let s = distance_spectrum(&geom);
        assert!(s.conflicting > 0, "{s:?}");
        assert!(s.conflict_free > 0, "{s:?}");
        assert_eq!(s.self_limited, 0, "n_c = 1 cannot self-conflict");
    }

    #[test]
    fn bank_scaling_curve_shape() {
        let curve = bank_scaling_curve(&[8, 16, 32], 4);
        assert_eq!(curve.len(), 3);
        for &(m, frac) in &curve {
            assert!(m >= 8);
            assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn prime_bank_counts_have_no_disjoint_sets() {
        // With m prime, gcd(m, d1, d2) = 1 for all nonzero distances:
        // disjoint access sets are impossible (Theorem 2).
        let geom = Geometry::unsectioned(13, 4).unwrap();
        let f = full_spectrum(&geom);
        assert_eq!(f.disjoint_sets, 0);
    }

    #[test]
    fn full_bandwidth_fraction_bounds() {
        let geom = Geometry::unsectioned(16, 4).unwrap();
        let s = distance_spectrum(&geom);
        let frac = s.full_bandwidth_fraction();
        assert!((0.0..=1.0).contains(&frac));
        assert_eq!(Spectrum::default().full_bandwidth_fraction(), 0.0);
    }
}
