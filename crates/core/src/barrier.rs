//! Fine structure of the unique barrier-situation (the derivation behind
//! eq. 29).
//!
//! In a unique barrier the conflict-free stream ("1", canonical distance
//! `d1 | m`) is granted every clock period, while the delayed stream ("2",
//! canonical distance `d2 > d1`) settles into a repeating schedule: after
//! each conflict it waits `(d2 - d1)/f` clock periods, then performs
//! `d1/f` conflict-free accesses (the last of which collides again). Per
//! `d2/f` clock periods the pair thus completes `(d1 + d2)/f` accesses —
//! eq. 29's `b_eff = 1 + d1/d2`.
//!
//! This module computes that schedule explicitly so it can be checked
//! against simulation grant-by-grant, not just in the aggregate.

use crate::geometry::Geometry;
use crate::isomorphism::CanonicalPair;
use crate::numtheory::gcd3;
use crate::ratio::Ratio;

/// The periodic schedule of a unique barrier-situation, in canonical units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSchedule {
    /// Length of one repeating block in clock periods: `d2 / f`.
    pub period: u64,
    /// Stream 1 grants per block (one per clock period): `d2 / f`.
    pub stream1_grants: u64,
    /// Stream 2 grants per block: `d1 / f`.
    pub stream2_grants: u64,
    /// Clock periods stream 2 spends delayed per block: `(d2 - d1) / f`.
    pub stream2_delay: u64,
    /// Combined bandwidth, `(d1 + d2) / d2` (eq. 29).
    pub beff: Ratio,
    /// Stream 2's bandwidth, `d1 / d2`.
    pub stream2_rate: Ratio,
}

/// Computes the barrier schedule for a canonical pair. The caller is
/// responsible for having established (Theorems 4, 6/7) that the unique
/// barrier is actually reached.
#[must_use]
pub fn barrier_schedule(geom: &Geometry, canonical: &CanonicalPair) -> BarrierSchedule {
    let f = gcd3(geom.banks(), canonical.d1, canonical.d2);
    let d1 = canonical.d1 / f;
    let d2 = canonical.d2 / f;
    BarrierSchedule {
        period: d2,
        stream1_grants: d2,
        stream2_grants: d1,
        stream2_delay: d2 - d1,
        beff: Ratio::new(canonical.d1 + canonical.d2, canonical.d2),
        stream2_rate: Ratio::new(canonical.d1, canonical.d2),
    }
}

impl BarrierSchedule {
    /// Grants per block across both streams.
    #[must_use]
    pub fn grants_per_period(&self) -> u64 {
        self.stream1_grants + self.stream2_grants
    }

    /// Consistency: the block accounts for every clock period of stream 2
    /// (grants + delays = period).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.stream2_grants + self.stream2_delay == self.period
            && self
                .beff
                .matches_counts(self.grants_per_period(), self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::canonicalize;
    use crate::pair::{classify_pair, PairClass};
    use crate::stream::StreamSpec;

    #[test]
    fn fig3_schedule() {
        // m = 13, n_c = 6, 1 ⊕ 6: per 6-cycle block stream 1 gets 6 grants,
        // stream 2 gets 1 grant and 5 delays.
        let geom = Geometry::unsectioned(13, 6).unwrap();
        let canonical = canonicalize(&geom, 1, 6).unwrap();
        let s = barrier_schedule(&geom, &canonical);
        assert_eq!(s.period, 6);
        assert_eq!(s.stream1_grants, 6);
        assert_eq!(s.stream2_grants, 1);
        assert_eq!(s.stream2_delay, 5);
        assert_eq!(s.beff, Ratio::new(7, 6));
        assert_eq!(s.stream2_rate, Ratio::new(1, 6));
        assert!(s.is_consistent());
    }

    #[test]
    fn fig5_schedule() {
        let geom = Geometry::unsectioned(13, 4).unwrap();
        let canonical = canonicalize(&geom, 1, 3).unwrap();
        let s = barrier_schedule(&geom, &canonical);
        assert_eq!(s.period, 3);
        assert_eq!(s.stream2_grants, 1);
        assert_eq!(s.stream2_delay, 2);
        assert_eq!(s.beff, Ratio::new(4, 3));
        assert!(s.is_consistent());
    }

    #[test]
    fn common_factor_pairs_divide_through() {
        // m = 24, d1 = 2, d2 = 4 (f = 2): the block is d2/f = 2 cycles with
        // one stream-2 grant and one delay.
        let geom = Geometry::unsectioned(24, 2).unwrap();
        let canonical = canonicalize(&geom, 2, 4).unwrap();
        assert_eq!((canonical.d1, canonical.d2), (2, 4));
        let s = barrier_schedule(&geom, &canonical);
        assert_eq!(s.period, 2);
        assert_eq!(s.stream2_grants, 1);
        assert_eq!(s.stream2_delay, 1);
        assert_eq!(s.beff, Ratio::new(3, 2));
        assert!(s.is_consistent());
    }

    #[test]
    fn schedule_matches_classifier_prediction() {
        // Wherever the classifier announces a unique barrier, the schedule's
        // aggregate must equal the classifier's b_eff.
        for (m, nc) in [(16u64, 2u64), (13, 4), (24, 2), (32, 3)] {
            let geom = Geometry::unsectioned(m, nc).unwrap();
            for d1 in 1..m {
                for d2 in 1..m {
                    let s1 = StreamSpec {
                        start_bank: 0,
                        distance: d1,
                    };
                    let s2 = StreamSpec {
                        start_bank: 0,
                        distance: d2,
                    };
                    if let PairClass::UniqueBarrier { canonical, beff } =
                        classify_pair(&geom, &s1, &s2, true)
                    {
                        let schedule = barrier_schedule(&geom, &canonical);
                        assert_eq!(schedule.beff, beff, "m={m} nc={nc} d1={d1} d2={d2}");
                        assert!(schedule.is_consistent());
                    }
                }
            }
        }
    }
}
