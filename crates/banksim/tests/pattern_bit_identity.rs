//! Bit-identity of the generalized pattern path (PR satellite).
//!
//! The workload-layer refactor re-expresses constant-stride streams as
//! [`PatternWorkload`]`<StridePattern>`. That re-expression must be
//! invisible: over random geometries and stream pairs, driving the engine
//! through the pattern path must reproduce the legacy [`StreamWorkload`]
//! path **bit for bit** — the packed `SimState` (and its hash) after every
//! cycle, the accumulated `SimStats`, and the exact steady-state
//! measurement. The figure goldens (fig02–09) pin the same property at the
//! artefact level in `scripts/check.sh`.

use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_banksim::pattern::PatternWorkload;
use vecmem_banksim::steady::measure_steady_state_workload;
use vecmem_banksim::{Engine, SimConfig, StreamWorkload};
use vecmem_prop::prelude::*;

const MAX_CYCLES: u64 = 200_000;
const LOCKSTEP_CYCLES: u64 = 400;

fn lockstep_case(config: &SimConfig, specs: &[StreamSpec]) -> Result<(), TestCaseError> {
    let geom = &config.geometry;
    let mut legacy_engine = Engine::new(config.clone());
    let mut legacy = StreamWorkload::infinite(geom, specs);
    let mut pattern_engine = Engine::new(config.clone());
    let mut pattern = PatternWorkload::strided(geom, specs);
    for cycle in 0..LOCKSTEP_CYCLES {
        legacy_engine.step(&mut legacy);
        pattern_engine.step(&mut pattern);
        prop_assert_eq!(
            legacy_engine.state().hash(),
            pattern_engine.state().hash(),
            "state hash diverged at cycle {}",
            cycle
        );
    }
    prop_assert_eq!(legacy_engine.state(), pattern_engine.state());
    prop_assert_eq!(legacy_engine.stats(), pattern_engine.stats());

    let mut legacy = StreamWorkload::infinite(geom, specs);
    let legacy_ss = measure_steady_state_workload(config, &mut legacy, 0, MAX_CYCLES);
    let mut pattern = PatternWorkload::strided(geom, specs);
    let pattern_ss = measure_steady_state_workload(config, &mut pattern, 0, MAX_CYCLES);
    prop_assert_eq!(legacy_ss, pattern_ss);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Unsectioned random geometries, cross-CPU port topology.
    #[test]
    fn stride_pattern_path_is_bit_identical(
        m in 2u64..=20,
        nc in 1u64..=6,
        d1 in 0u64..=40,
        d2 in 0u64..=40,
        b1 in 0u64..=40,
        b2 in 0u64..=40,
    ) {
        let geom = Geometry::unsectioned(m, nc).unwrap();
        let specs = [
            StreamSpec { start_bank: b1 % m, distance: d1 % m },
            StreamSpec { start_bank: b2 % m, distance: d2 % m },
        ];
        lockstep_case(&SimConfig::one_port_per_cpu(geom, 2), &specs)?;
    }

    /// Sectioned geometries with both ports on one CPU: section conflicts
    /// and the access-path arbiter must not tell the two paths apart.
    #[test]
    fn stride_pattern_path_is_bit_identical_sectioned(
        s_idx in 0usize..=2,
        d1 in 0u64..=40,
        d2 in 0u64..=40,
        b2 in 0u64..=40,
    ) {
        let (m, s, nc) = [(12, 2, 2), (12, 3, 3), (16, 4, 4)][s_idx];
        let geom = Geometry::new(m, s, nc).unwrap();
        let specs = [
            StreamSpec { start_bank: 0, distance: d1 % m },
            StreamSpec { start_bank: b2 % m, distance: d2 % m },
        ];
        lockstep_case(&SimConfig::single_cpu(geom, 2), &specs)?;
    }
}
