//! Random-access workloads — the setting of the classical interleaved-
//! memory models the paper's introduction cites (\[1\]–\[5\]).
//!
//! Whereas vector mode produces deterministic strided streams, the classic
//! models assume each processor requests a *uniformly random* bank. This
//! module provides that workload (with the same in-order,
//! resubmit-on-conflict port semantics as the rest of the simulator) so
//! vector-mode and random-access bandwidth can be compared on identical
//! hardware — quantifying how much of the machine's bandwidth the
//! vector-mode structure is worth.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::request::{PortId, Request};
use crate::rng::SmallRng;
use crate::workload::Workload;

/// Each port requests an independent, uniformly random bank per element.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    banks: u64,
    current: Vec<u64>,
    rng: SmallRng,
}

impl RandomWorkload {
    /// A workload for `ports` ports over `banks` banks, deterministic in
    /// `seed`.
    #[must_use]
    pub fn new(banks: u64, ports: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let current = (0..ports).map(|_| rng.gen_range(0..banks)).collect();
        Self {
            banks,
            current,
            rng,
        }
    }
}

impl Workload for RandomWorkload {
    fn pending(&self, port: PortId, _now: u64) -> Option<Request> {
        self.current.get(port.0).map(|&bank| Request::to_bank(bank))
    }

    fn granted(&mut self, port: PortId, _now: u64) {
        self.current[port.0] = self.rng.gen_range(0..self.banks);
    }

    fn is_finished(&self) -> bool {
        false
    }
}

/// Long-run average bandwidth of the random workload (no cyclic state
/// exists; this is a Monte Carlo estimate over `cycles` clock periods
/// after a warm-up of `cycles / 10`).
#[must_use]
pub fn measure_random_bandwidth(config: &SimConfig, seed: u64, cycles: u64) -> f64 {
    let mut engine = Engine::new(config.clone());
    let mut workload = RandomWorkload::new(config.geometry.banks(), config.num_ports(), seed);
    let warmup = cycles / 10;
    for _ in 0..warmup {
        engine.step(&mut workload);
    }
    let grants_before = engine.stats().total_grants();
    for _ in 0..cycles {
        engine.step(&mut workload);
    }
    (engine.stats().total_grants() - grants_before) as f64 / cycles as f64
}

/// Hellerman's classical batch-scan bandwidth: the expected number of
/// requests from an infinite random sequence that can be serviced per
/// memory cycle, scanning until the first bank repetition:
///
/// ```text
/// B(m) = Σ_{k=1}^{m}  m! / ((m-k)! · m^k)  ≈  sqrt(π·m/2)
/// ```
///
/// This is the no-queueing, single-decoder model (\[2\]'s starting point);
/// the simulator's dynamic-resolution model queues delayed requests and so
/// achieves more.
///
/// ```
/// use vecmem_banksim::hellerman_bandwidth;
/// assert!((hellerman_bandwidth(2) - 1.5).abs() < 1e-12);
/// assert!(hellerman_bandwidth(1024) > 35.0); // ~ sqrt(pi*1024/2)
/// ```
#[must_use]
pub fn hellerman_bandwidth(banks: u64) -> f64 {
    // Compute Σ Π_{j=0}^{k-1} (m - j)/m iteratively to stay in f64 range.
    let m = banks as f64;
    let mut term = 1.0;
    let mut sum = 0.0;
    for j in 0..banks {
        term *= (m - j as f64) / m;
        sum += term;
    }
    sum
}

/// The `sqrt(π·m/2)` asymptotic of [`hellerman_bandwidth`].
#[must_use]
pub fn hellerman_asymptotic(banks: u64) -> f64 {
    (std::f64::consts::PI * banks as f64 / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    #[test]
    fn hellerman_small_values() {
        // m = 1: B = 1. m = 2: 1 + 2!/0!/4 = 1 + 1/2 = 1.5.
        assert!((hellerman_bandwidth(1) - 1.0).abs() < 1e-12);
        assert!((hellerman_bandwidth(2) - 1.5).abs() < 1e-12);
        // m = 3: 1 + 2/3 + 2/9 = 17/9.
        assert!((hellerman_bandwidth(3) - 17.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn hellerman_matches_asymptotic_within_ten_percent() {
        for m in [16u64, 64, 256, 1024] {
            let exact = hellerman_bandwidth(m);
            let asym = hellerman_asymptotic(m);
            let rel = (exact - asym).abs() / exact;
            assert!(rel < 0.10, "m={m}: exact {exact}, asym {asym}");
        }
    }

    #[test]
    fn hellerman_monte_carlo_agreement() {
        // Direct Monte Carlo of the batch-scan definition.
        let m = 16u64;
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut seen = [false; 16];
            loop {
                let b = rng.gen_range(0..m) as usize;
                if seen[b] {
                    break;
                }
                seen[b] = true;
                total += 1;
            }
        }
        let mc = total as f64 / trials as f64;
        let exact = hellerman_bandwidth(m);
        assert!((mc - exact).abs() < 0.1, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn random_workload_is_deterministic_per_seed() {
        let g = Geometry::unsectioned(16, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(g, 4);
        let a = measure_random_bandwidth(&config, 42, 20_000);
        let b = measure_random_bandwidth(&config, 42, 20_000);
        assert_eq!(a, b);
        let c = measure_random_bandwidth(&config, 43, 20_000);
        // Different seeds give (slightly) different estimates.
        assert!((a - c).abs() > 0.0);
    }

    #[test]
    fn random_bandwidth_below_vector_bandwidth() {
        // Four random-access ports on 16 banks (n_c = 4) fall well short of
        // the 4.0 that four well-placed unit-stride streams achieve.
        let g = Geometry::unsectioned(16, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(g, 4);
        let random = measure_random_bandwidth(&config, 1, 50_000);
        assert!(random < 3.2, "random access should conflict: {random}");
        assert!(random > 1.0, "but still beat a single port: {random}");
    }

    #[test]
    fn random_bandwidth_scales_with_banks() {
        // More banks -> fewer conflicts at fixed port count.
        let p = 4;
        let small = {
            let g = Geometry::unsectioned(8, 4).unwrap();
            measure_random_bandwidth(&SimConfig::one_port_per_cpu(g, p), 9, 50_000)
        };
        let large = {
            let g = Geometry::unsectioned(256, 4).unwrap();
            measure_random_bandwidth(&SimConfig::one_port_per_cpu(g, p), 9, 50_000)
        };
        assert!(large > small);
        assert!(
            large > 3.5,
            "256 banks should mostly serve 4 random ports: {large}"
        );
    }

    #[test]
    fn bandwidth_capped_by_bank_periods() {
        // 8 ports, 16 banks, n_c = 4: the capacity bound m/n_c = 4 holds
        // for random access too.
        let g = Geometry::unsectioned(16, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(g, 8);
        let random = measure_random_bandwidth(&config, 5, 50_000);
        assert!(random <= 4.0 + 1e-9, "capacity bound violated: {random}");
    }
}
