//! Equally spaced (strided) access streams as a [`Workload`].
//!
//! This is the paper's vector-mode access pattern: stream `i` starts at bank
//! `b_i` and requests `(b_i + k·d_i) mod m` for `k = 0, 1, 2, …`, one
//! request per clock period (unless delayed). Streams may be infinite (for
//! steady-state analysis) or transfer a fixed element count, and may start
//! at a later clock period (a relative position in time, which the paper
//! notes is equivalent to a relative position in space).

use crate::request::{PortId, Request};
use crate::steady::ObservableWorkload;
use crate::workload::Workload;
use vecmem_analytic::{Geometry, StreamSpec};

/// How many elements a stream transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLength {
    /// Endless stream (paper assumption 1 in §III).
    Infinite,
    /// Exactly `n` elements, after which the port goes idle.
    Elements(u64),
}

/// One strided stream bound to a port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StridedStream {
    start_bank: u64,
    distance: u64,
    length: StreamLength,
    start_cycle: u64,
    issued: u64,
    banks: u64,
}

impl StridedStream {
    /// Creates an infinite stream starting immediately.
    #[must_use]
    pub fn infinite(geom: &Geometry, spec: StreamSpec) -> Self {
        Self {
            start_bank: spec.start_bank,
            distance: spec.distance,
            length: StreamLength::Infinite,
            start_cycle: 0,
            issued: 0,
            banks: geom.banks(),
        }
    }

    /// Creates a finite stream of `n` elements starting immediately.
    #[must_use]
    pub fn finite(geom: &Geometry, spec: StreamSpec, n: u64) -> Self {
        Self {
            length: StreamLength::Elements(n),
            ..Self::infinite(geom, spec)
        }
    }

    /// Delays the first request to `start_cycle` (builder style).
    #[must_use]
    pub fn starting_at(mut self, start_cycle: u64) -> Self {
        self.start_cycle = start_cycle;
        self
    }

    /// Bank address of the current (not yet granted) request, if any.
    #[must_use]
    pub fn current_bank(&self) -> Option<u64> {
        match self.length {
            StreamLength::Elements(n) if self.issued >= n => None,
            _ => Some(
                ((self.start_bank as u128 + self.issued as u128 * self.distance as u128)
                    % self.banks as u128) as u64,
            ),
        }
    }

    /// Number of granted requests so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// True when a finite stream has transferred all its elements.
    #[must_use]
    pub fn done(&self) -> bool {
        matches!(self.length, StreamLength::Elements(n) if self.issued >= n)
    }
}

/// A fixed set of strided streams, one per port.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    streams: Vec<StridedStream>,
}

impl StreamWorkload {
    /// Builds a workload from one stream per port (index = port id).
    #[must_use]
    pub fn new(streams: Vec<StridedStream>) -> Self {
        Self { streams }
    }

    /// Convenience: infinite streams for the given specs.
    #[must_use]
    pub fn infinite(geom: &Geometry, specs: &[StreamSpec]) -> Self {
        Self::new(
            specs
                .iter()
                .map(|&s| StridedStream::infinite(geom, s))
                .collect(),
        )
    }

    /// Access to an individual stream.
    #[must_use]
    pub fn stream(&self, port: PortId) -> &StridedStream {
        &self.streams[port.0]
    }

    /// A compact signature of the workload state for cyclic-state detection:
    /// each port's current bank (or `m`, an out-of-range marker, when done).
    #[must_use]
    pub fn state_signature(&self) -> Vec<u64> {
        self.streams
            .iter()
            .map(|s| s.current_bank().unwrap_or(s.banks))
            .collect()
    }
}

impl Workload for StreamWorkload {
    fn pending(&self, port: PortId, now: u64) -> Option<Request> {
        let s = self.streams.get(port.0)?;
        if now < s.start_cycle {
            return None;
        }
        s.current_bank().map(Request::to_bank)
    }

    fn granted(&mut self, port: PortId, _now: u64) {
        let s = &mut self.streams[port.0];
        debug_assert!(!s.done(), "granted() on a finished stream");
        s.issued += 1;
    }

    fn is_finished(&self) -> bool {
        self.streams.iter().all(StridedStream::done)
    }
}

impl ObservableWorkload for StreamWorkload {
    fn signature_len(&self) -> usize {
        self.streams.len()
    }

    fn write_signature(&self, out: &mut [u64]) {
        for (slot, s) in out.iter_mut().zip(&self.streams) {
            *slot = s.current_bank().unwrap_or(s.banks);
        }
    }

    fn signature_bound(&self) -> Option<u64> {
        // A slot holds the stream's current bank (`< m`) or `m` itself as
        // the finished marker, so `m` is the inclusive bound.
        self.streams.iter().map(|s| s.banks).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::unsectioned(12, 3).unwrap()
    }

    fn spec(b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(&geom(), b, d).unwrap()
    }

    #[test]
    fn infinite_stream_sequence() {
        let g = geom();
        let mut w = StreamWorkload::infinite(&g, &[spec(2, 7)]);
        assert_eq!(w.pending(PortId(0), 0), Some(Request::to_bank(2)));
        w.granted(PortId(0), 0);
        assert_eq!(w.pending(PortId(0), 1), Some(Request::to_bank(9)));
        // Delayed port keeps the same request.
        assert_eq!(w.pending(PortId(0), 2), Some(Request::to_bank(9)));
        assert!(!w.is_finished());
    }

    #[test]
    fn finite_stream_completes() {
        let g = geom();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec(0, 1), 2)]);
        w.granted(PortId(0), 0);
        assert!(!w.is_finished());
        w.granted(PortId(0), 1);
        assert!(w.is_finished());
        assert_eq!(w.pending(PortId(0), 2), None);
        assert!(w.stream(PortId(0)).done());
    }

    #[test]
    fn delayed_start() {
        let g = geom();
        let s = StridedStream::infinite(&g, spec(0, 1)).starting_at(3);
        let w = StreamWorkload::new(vec![s]);
        assert_eq!(w.pending(PortId(0), 0), None);
        assert_eq!(w.pending(PortId(0), 2), None);
        assert_eq!(w.pending(PortId(0), 3), Some(Request::to_bank(0)));
    }

    #[test]
    fn state_signature_tracks_positions() {
        let g = geom();
        let mut w = StreamWorkload::infinite(&g, &[spec(0, 1), spec(5, 2)]);
        assert_eq!(w.state_signature(), vec![0, 5]);
        w.granted(PortId(0), 0);
        w.granted(PortId(1), 0);
        assert_eq!(w.state_signature(), vec![1, 7]);
        // A finished stream signs with the out-of-range marker m.
        let mut f = StreamWorkload::new(vec![StridedStream::finite(&g, spec(0, 1), 1)]);
        f.granted(PortId(0), 0);
        assert_eq!(f.state_signature(), vec![12]);
    }

    #[test]
    fn ports_without_streams_are_idle() {
        let g = geom();
        let w = StreamWorkload::infinite(&g, &[spec(0, 1)]);
        assert_eq!(w.pending(PortId(5), 0), None);
    }
}
