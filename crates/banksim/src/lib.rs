//! # vecmem-banksim
//!
//! Cycle-accurate simulator of an `m`-way interleaved, sectioned memory
//! system accessed by vector-mode ports — the experimental substrate of the
//! reproduction of Oed & Lange (1985), *"On the Effective Bandwidth of
//! Interleaved Memories in Vector Processor Systems"*.
//!
//! The simulator implements the memory model of the paper's §II exactly:
//!
//! * banks busy for `n_c` clock periods after a grant;
//! * one access path per CPU per section, occupied for one clock period per
//!   grant;
//! * dynamic conflict resolution — a delayed port retries next period with
//!   all its subsequent requests pushed back;
//! * the three conflict types (bank, simultaneous bank, section) with fixed
//!   or cyclic priority rules.
//!
//! On top of the per-cycle [`engine::Engine`] sit:
//!
//! * [`streams`] — the vector-mode strided access streams of §III;
//! * [`steady`] — exact cyclic-state detection, yielding the effective
//!   bandwidth `b_eff` as an exact rational;
//! * [`trace`] — ASCII traces in the visual style of the paper's Figs. 2–9;
//! * [`observe`] — zero-overhead per-cycle observer hooks ([`SimObserver`])
//!   that the `vecmem-obs` crate builds metrics registries and structured
//!   event exporters on.
//!
//! ```
//! use vecmem_analytic::{Geometry, Ratio, StreamSpec};
//! use vecmem_banksim::steady::measure_pair_cross_cpu;
//!
//! // Fig. 2: two streams, d1 = 1 and d2 = 7, on a 12-bank memory with
//! // bank cycle 3: conflict-free, effective bandwidth 2.
//! let geom = Geometry::unsectioned(12, 3).unwrap();
//! let s1 = StreamSpec::new(&geom, 0, 1).unwrap();
//! let s2 = StreamSpec::new(&geom, 1, 7).unwrap();
//! let steady = measure_pair_cross_cpu(&geom, s1, s2, 10_000).unwrap();
//! assert_eq!(steady.beff, Ratio::integer(2));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

// The simulation core — packed state, step kernel, arbitration, observer
// hooks, statistics vocabulary and cyclic-state detection — lives in
// `vecmem-simcore`; its modules are re-exported here so the historical
// `vecmem_banksim::arbiter::…` (etc.) paths keep working.
pub use vecmem_simcore::{
    arbiter, config, observe, pattern, request, state, stats, step, workload,
};

pub mod engine;
pub mod random;
pub mod rng;
pub mod steady;
pub mod streams;
pub mod trace;
pub mod transient;

pub use config::{BankModel, PriorityRule, SimConfig};
pub use engine::{Engine, RunOutcome};
pub use observe::{NoopObserver, SimObserver, Tee};
pub use pattern::{
    AccessPattern, AnyPattern, BurstPattern, GatherPattern, IndexPattern, PatternLength,
    PatternPort, PatternSpec, PatternWorkload, StridePattern,
};
pub use random::{
    hellerman_asymptotic, hellerman_bandwidth, measure_random_bandwidth, RandomWorkload,
};
pub use request::{ConflictKind, CpuId, PortId, PortOutcome, Request};
pub use rng::SmallRng;
pub use stats::{ConflictCounts, PortStats, SimStats, WAIT_BUCKETS};
pub use steady::{
    measure_steady_state, measure_steady_state_patterns, measure_steady_state_workload,
    ObservableWorkload, SteadyState, SteadyStateError,
};
pub use streams::{StreamLength, StreamWorkload, StridedStream};
pub use trace::TraceRecorder;
pub use transient::{finite_vector_bandwidth, transient_profile, TransientProfile};
pub use vecmem_simcore::WINDOWED_FALLBACK_CYCLES;
pub use vecmem_simcore::{CycleEvents, PortEvent, SimState};
pub use workload::Workload;
