//! The cycle-accurate simulation engine.
//!
//! Drives a [`Workload`] against the configured memory system one clock
//! period at a time: collect pending requests, arbitrate (see
//! [`crate::arbiter`]), grant or delay, account statistics, optionally
//! record a trace.

use crate::arbiter::arbitrate;
use crate::config::{PriorityRule, SimConfig};
use crate::observe::{NoopObserver, SimObserver};
use crate::request::{PortId, PortOutcome, Request};
use crate::stats::SimStats;
use crate::trace::TraceRecorder;
use crate::workload::Workload;

/// Result of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The workload finished; payload is the clock period *after* the last
    /// grant (i.e. the elapsed cycle count).
    Finished(u64),
    /// `max_cycles` elapsed with the workload still active.
    CyclesExhausted,
}

impl RunOutcome {
    /// Elapsed cycles for a finished run.
    #[must_use]
    pub fn finished_cycles(&self) -> Option<u64> {
        match self {
            Self::Finished(c) => Some(*c),
            Self::CyclesExhausted => None,
        }
    }
}

/// The simulation engine.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    /// `free_at[j]`: first clock period at which bank `j` may be granted
    /// again.
    free_at: Vec<u64>,
    now: u64,
    rotation: usize,
    stats: SimStats,
    trace: Option<TraceRecorder>,
    scratch: Vec<(PortId, Request)>,
    /// Clock periods the current head request of each port has waited.
    current_wait: Vec<u64>,
}

impl Engine {
    /// A fresh engine for the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let banks = config.geometry.banks() as usize;
        let ports = config.num_ports();
        Self {
            free_at: vec![0; banks],
            now: 0,
            rotation: 0,
            stats: SimStats::new(ports),
            trace: None,
            scratch: Vec::with_capacity(ports),
            current_wait: vec![0; ports],
            config,
        }
    }

    /// Enables trace recording for the first `capacity` cycles.
    #[must_use]
    pub fn with_trace(mut self, capacity: u64) -> Self {
        self.trace = Some(TraceRecorder::new(self.config.geometry.banks(), capacity));
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current clock period.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Current cyclic-priority rotation offset.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// True when `bank` is still active at the current clock period.
    #[must_use]
    pub fn bank_busy(&self, bank: u64) -> bool {
        self.now < self.free_at[bank as usize]
    }

    /// Remaining busy periods of every bank at the current clock period —
    /// part of the state signature for cyclic-state detection.
    #[must_use]
    pub fn bank_residues(&self) -> Vec<u8> {
        self.free_at
            .iter()
            .map(|&f| f.saturating_sub(self.now) as u8)
            .collect()
    }

    /// Simulates one clock period and returns each active port's outcome.
    ///
    /// Equivalent to [`Self::step_with`] with a [`NoopObserver`]; the two
    /// paths monomorphise to identical code.
    pub fn step<W: Workload>(&mut self, workload: &mut W) -> Vec<(PortId, Request, PortOutcome)> {
        self.step_with(workload, &mut NoopObserver)
    }

    /// Simulates one clock period, reporting every grant, delay, bank
    /// transition and cycle summary to `observer`.
    ///
    /// The observer is a generic parameter so the disabled
    /// ([`NoopObserver`]) path compiles to exactly the unobserved engine:
    /// the callbacks inline to nothing and the `O::ENABLED`-gated
    /// bookkeeping below is removed as dead code.
    pub fn step_with<W: Workload, O: SimObserver>(
        &mut self,
        workload: &mut W,
        observer: &mut O,
    ) -> Vec<(PortId, Request, PortOutcome)> {
        if O::ENABLED {
            // Banks whose busy interval expired exactly now transition to
            // free; `free_at == 0` means "never granted", not a transition.
            for (bank, &free) in self.free_at.iter().enumerate() {
                if free == self.now && free != 0 {
                    observer.on_bank_busy(self.now, bank as u64, false);
                }
            }
        }
        self.scratch.clear();
        for p in 0..self.config.num_ports() {
            let port = PortId(p);
            if let Some(req) = workload.pending(port, self.now) {
                debug_assert!(
                    req.bank < self.config.geometry.banks(),
                    "request bank out of range"
                );
                self.scratch.push((port, req));
            }
        }
        if O::ENABLED {
            observer.on_arbitration(self.now, self.rotation, &self.scratch);
        }
        let free_at = &self.free_at;
        let now = self.now;
        let outcomes = arbitrate(
            &self.config,
            self.rotation,
            |bank| now < free_at[bank as usize],
            &self.scratch,
        );
        let nc = self.config.geometry.bank_cycle();
        // Record delays before grants so that, within one clock period, a
        // grant's digit wins the trace cell over a competitor's delay mark
        // (the paper's figures show e.g. "1<<<<<222222": the digit at the
        // grant cycle, delay marks over the remaining busy cells).
        for &(port, req, outcome) in &outcomes {
            if let PortOutcome::Delayed(kind) = outcome {
                self.stats.record_conflict(port, kind);
                self.current_wait[port.0] += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.mark_delay(req.bank, self.now, port, kind);
                }
                if O::ENABLED {
                    observer.on_delay(self.now, port, req.bank, kind);
                }
            }
        }
        for &(port, req, outcome) in &outcomes {
            match outcome {
                PortOutcome::Granted => {
                    self.free_at[req.bank as usize] = self.now + nc;
                    self.stats.record_grant(port);
                    if O::ENABLED {
                        observer.on_grant(self.now, port, req.bank, self.current_wait[port.0], nc);
                        observer.on_bank_busy(self.now, req.bank, true);
                    }
                    self.stats.record_wait(port, self.current_wait[port.0]);
                    self.current_wait[port.0] = 0;
                    if let Some(t) = self.trace.as_mut() {
                        t.mark_grant(req.bank, self.now, nc, port);
                    }
                    workload.granted(port, self.now);
                }
                PortOutcome::Delayed(_) => {}
            }
        }
        self.stats.tick();
        if O::ENABLED {
            let grants = outcomes
                .iter()
                .filter(|&&(_, _, o)| o == PortOutcome::Granted)
                .count() as u32;
            let busy = self.free_at.iter().filter(|&&f| f > self.now).count() as u32;
            observer.on_cycle_end(self.now, grants, busy);
        }
        if self.config.priority == PriorityRule::Cyclic {
            // The rotating priority advances whenever it was exercised: any
            // clock period in which a port lost an arbitration (section or
            // simultaneous bank conflict) passes the top priority on. A
            // per-cycle rotation would resonate with the bank cycle time
            // (e.g. p = n_c = 2 keeps the same port on top at every grant
            // instant, starving the other); advancing on conflict makes the
            // rule starvation-free.
            let contested = outcomes.iter().any(|&(_, _, o)| {
                matches!(
                    o,
                    PortOutcome::Delayed(crate::request::ConflictKind::Section)
                        | PortOutcome::Delayed(crate::request::ConflictKind::SimultaneousBank)
                )
            });
            if contested {
                self.rotation = (self.rotation + 1) % self.config.num_ports().max(1);
            }
        }
        self.now += 1;
        outcomes
    }

    /// Runs until the workload finishes or `max_cycles` elapse.
    pub fn run<W: Workload>(&mut self, workload: &mut W, max_cycles: u64) -> RunOutcome {
        self.run_with(workload, max_cycles, &mut NoopObserver)
    }

    /// Observed variant of [`Self::run`]: every cycle is reported to
    /// `observer` via [`Self::step_with`].
    pub fn run_with<W: Workload, O: SimObserver>(
        &mut self,
        workload: &mut W,
        max_cycles: u64,
        observer: &mut O,
    ) -> RunOutcome {
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            if workload.is_finished() {
                return RunOutcome::Finished(self.now);
            }
            self.step_with(workload, observer);
        }
        if workload.is_finished() {
            RunOutcome::Finished(self.now)
        } else {
            RunOutcome::CyclesExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{StreamWorkload, StridedStream};
    use vecmem_analytic::{Geometry, StreamSpec};

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    #[test]
    fn single_stream_full_bandwidth() {
        // d = 1, r = m >= n_c: one grant every clock period.
        let g = geom(8, 4);
        let cfg = SimConfig::single_cpu(g, 1);
        let mut engine = Engine::new(cfg);
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 32)]);
        let out = engine.run(&mut w, 1000);
        assert_eq!(out, RunOutcome::Finished(32));
        assert_eq!(engine.stats().total_grants(), 32);
        assert_eq!(engine.stats().total_conflicts().total(), 0);
    }

    #[test]
    fn self_conflicting_stream_throttled() {
        // §III-A: m = 8, n_c = 4, d = 4: r = 2 < n_c, b_eff = r/n_c = 1/2.
        // 16 elements need 2 conflict-free grants per n_c window: the k-th
        // pair completes at cycle 4k+2; total = 4·7 + 2 + ... just check the
        // asymptotic rate: 16 elements in ~32 cycles.
        let g = geom(8, 4);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 4).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 16)]);
        let out = engine.run(&mut w, 1000);
        let cycles = out.finished_cycles().unwrap();
        // Exact: pairs of grants at (4k, 4k+1): last grant at 4·7 + 1 = 29,
        // finish observed at cycle 30.
        assert_eq!(cycles, 30);
        assert!(engine.stats().total_conflicts().bank > 0);
    }

    #[test]
    fn bank_hold_time_respected() {
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 0).unwrap(); // hammer bank 0
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 3)]);
        engine.run(&mut w, 100);
        // Grants at cycles 0, 3, 6; finished at 7.
        assert_eq!(engine.stats().total_grants(), 3);
        assert_eq!(engine.stats().port(PortId(0)).conflicts.bank, 4); // cycles 1,2,4,5
    }

    #[test]
    fn trace_records_run() {
        let g = geom(4, 2);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1)).with_trace(8);
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 4)]);
        engine.run(&mut w, 100);
        let t = engine.trace().unwrap();
        assert_eq!(t.row(0, 0, 4), "11..");
        assert_eq!(t.row(1, 0, 4), ".11.");
        assert_eq!(t.row(2, 0, 4), "..11");
    }

    #[test]
    fn two_streams_conflict_free_fig2_shape() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7, simultaneous start at
        // banks 0 and 1. Theorem 3 predicts b_eff = 2: after the transient
        // no conflicts.
        let g = geom(12, 3);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let mut engine = Engine::new(cfg);
        let s1 = StreamSpec::new(&g, 0, 1).unwrap();
        let s2 = StreamSpec::new(&g, 1, 7).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[s1, s2]);
        for _ in 0..240 {
            engine.step(&mut w);
        }
        // Both streams should achieve (close to) one grant per cycle.
        let g0 = engine.stats().port(PortId(0)).grants;
        let g1 = engine.stats().port(PortId(1)).grants;
        assert!(g0 >= 235, "stream 1 starved: {g0}");
        assert!(g1 >= 235, "stream 2 starved: {g1}");
    }

    #[test]
    fn run_outcome_exhaustion() {
        let g = geom(4, 2);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[spec]);
        assert_eq!(engine.run(&mut w, 10), RunOutcome::CyclesExhausted);
        assert_eq!(engine.now(), 10);
    }

    #[test]
    fn bank_residues_signature() {
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 2, 1).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[spec]);
        engine.step(&mut w); // grant at bank 2, busy for 3
        assert_eq!(engine.bank_residues(), vec![0, 0, 2, 0]);
    }

    #[test]
    fn wait_times_recorded() {
        // d = 0 on m = 4, n_c = 3: grants at 0, 3, 6 with waits 0, 2, 2.
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 0).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 3)]);
        engine.run(&mut w, 100);
        let p = engine.stats().port(PortId(0));
        assert_eq!(p.wait_histogram[0], 1);
        assert_eq!(p.wait_histogram[2], 2);
        assert_eq!(p.max_wait, 2);
        assert_eq!(p.mean_wait(), 4.0 / 3.0);
    }
}
