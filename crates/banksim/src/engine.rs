//! The cycle-accurate simulation engine.
//!
//! A thin, stats- and trace-keeping wrapper around the pure
//! [`step`](vecmem_simcore::step::step) kernel of `vecmem-simcore`: the
//! kernel owns the per-cycle semantics (arbitration, grants, delays,
//! observer events, bank aging) and records each cycle's per-port outcomes
//! into the [`SimState`]; the engine replays those outcomes into its
//! [`SimStats`] and optional [`TraceRecorder`].

use crate::config::SimConfig;
use crate::observe::{NoopObserver, SimObserver};
use crate::request::{PortId, PortOutcome, Request};
use crate::stats::SimStats;
use crate::trace::TraceRecorder;
use crate::workload::Workload;
use vecmem_simcore::{step::step, CycleEvents, SimState};

/// Result of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The workload finished; payload is the clock period *after* the last
    /// grant (i.e. the elapsed cycle count).
    Finished(u64),
    /// `max_cycles` elapsed with the workload still active.
    CyclesExhausted,
}

impl RunOutcome {
    /// Elapsed cycles for a finished run.
    #[must_use]
    pub fn finished_cycles(&self) -> Option<u64> {
        match self {
            Self::Finished(c) => Some(*c),
            Self::CyclesExhausted => None,
        }
    }
}

/// The simulation engine.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    state: SimState,
    stats: SimStats,
    trace: Option<TraceRecorder>,
}

impl Engine {
    /// A fresh engine for the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            state: SimState::new(&config),
            stats: SimStats::new(config.num_ports()),
            trace: None,
            config,
        }
    }

    /// Enables trace recording for the first `capacity` cycles.
    #[must_use]
    pub fn with_trace(mut self, capacity: u64) -> Self {
        self.trace = Some(TraceRecorder::new(self.config.geometry.banks(), capacity));
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The packed simulator state (residues, rotation, wait counters and
    /// the last cycle's per-port outcomes).
    #[must_use]
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Current clock period.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.state.now()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Current cyclic-priority rotation offset.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.state.rotation()
    }

    /// True when `bank` is still active at the current clock period.
    #[must_use]
    pub fn bank_busy(&self, bank: u64) -> bool {
        self.state.residue(bank) > 0
    }

    /// Remaining busy periods of every bank at the current clock period —
    /// part of the state signature for cyclic-state detection.
    #[must_use]
    pub fn bank_residues(&self) -> Vec<u8> {
        self.state.residues_vec()
    }

    /// One kernel step plus the engine's bookkeeping: statistics and trace
    /// marks replayed from the per-port outcomes the kernel left in the
    /// state. Delays are recorded before grants so that, within one clock
    /// period, a grant's digit wins the trace cell over a competitor's
    /// delay mark (the paper's figures show e.g. "1<<<<<222222": the digit
    /// at the grant cycle, delay marks over the remaining busy cells).
    fn step_kernel<W: Workload, O: SimObserver>(
        &mut self,
        workload: &mut W,
        observer: &mut O,
    ) -> CycleEvents {
        let now = self.state.now();
        let events = step(&self.config, &mut self.state, workload, observer);
        let hold = self.config.geometry.bank_cycle();
        for ev in self.state.outcomes() {
            if let PortOutcome::Delayed(kind) = ev.outcome {
                self.stats.record_conflict(ev.port, kind);
                if let Some(t) = self.trace.as_mut() {
                    t.mark_delay(ev.request.bank, now, ev.port, kind);
                }
            }
        }
        for ev in self.state.outcomes() {
            if ev.outcome == PortOutcome::Granted {
                self.stats.record_grant(ev.port);
                self.stats.record_wait(ev.port, ev.wait);
                if let Some(t) = self.trace.as_mut() {
                    t.mark_grant(ev.request.bank, now, hold, ev.port);
                }
            }
        }
        self.stats.tick();
        events
    }

    /// Simulates one clock period and returns each active port's outcome.
    ///
    /// Equivalent to [`Self::step_with`] with a [`NoopObserver`]; the two
    /// paths monomorphise to identical code.
    pub fn step<W: Workload>(&mut self, workload: &mut W) -> Vec<(PortId, Request, PortOutcome)> {
        self.step_with(workload, &mut NoopObserver)
    }

    /// Simulates one clock period, reporting every grant, delay, bank
    /// transition and cycle summary to `observer`.
    ///
    /// The observer is a generic parameter so the disabled
    /// ([`NoopObserver`]) path compiles to exactly the unobserved engine:
    /// the callbacks inline to nothing and the `O::ENABLED`-gated
    /// bookkeeping is removed as dead code.
    pub fn step_with<W: Workload, O: SimObserver>(
        &mut self,
        workload: &mut W,
        observer: &mut O,
    ) -> Vec<(PortId, Request, PortOutcome)> {
        self.step_kernel(workload, observer);
        self.state
            .outcomes()
            .iter()
            .map(|ev| (ev.port, ev.request, ev.outcome))
            .collect()
    }

    /// Runs until the workload finishes or `max_cycles` elapse.
    pub fn run<W: Workload>(&mut self, workload: &mut W, max_cycles: u64) -> RunOutcome {
        self.run_with(workload, max_cycles, &mut NoopObserver)
    }

    /// Observed variant of [`Self::run`]: every cycle is reported to
    /// `observer`. Loops the kernel directly, without materialising the
    /// per-cycle outcome vectors [`Self::step_with`] returns.
    pub fn run_with<W: Workload, O: SimObserver>(
        &mut self,
        workload: &mut W,
        max_cycles: u64,
        observer: &mut O,
    ) -> RunOutcome {
        let deadline = self.state.now() + max_cycles;
        while self.state.now() < deadline {
            if workload.is_finished() {
                return RunOutcome::Finished(self.state.now());
            }
            self.step_kernel(workload, observer);
        }
        if workload.is_finished() {
            RunOutcome::Finished(self.state.now())
        } else {
            RunOutcome::CyclesExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{StreamWorkload, StridedStream};
    use vecmem_analytic::{Geometry, StreamSpec};

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    #[test]
    fn single_stream_full_bandwidth() {
        // d = 1, r = m >= n_c: one grant every clock period.
        let g = geom(8, 4);
        let cfg = SimConfig::single_cpu(g, 1);
        let mut engine = Engine::new(cfg);
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 32)]);
        let out = engine.run(&mut w, 1000);
        assert_eq!(out, RunOutcome::Finished(32));
        assert_eq!(engine.stats().total_grants(), 32);
        assert_eq!(engine.stats().total_conflicts().total(), 0);
    }

    #[test]
    fn self_conflicting_stream_throttled() {
        // §III-A: m = 8, n_c = 4, d = 4: r = 2 < n_c, b_eff = r/n_c = 1/2.
        // 16 elements need 2 conflict-free grants per n_c window: the k-th
        // pair completes at cycle 4k+2; total = 4·7 + 2 + ... just check the
        // asymptotic rate: 16 elements in ~32 cycles.
        let g = geom(8, 4);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 4).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 16)]);
        let out = engine.run(&mut w, 1000);
        let cycles = out.finished_cycles().unwrap();
        // Exact: pairs of grants at (4k, 4k+1): last grant at 4·7 + 1 = 29,
        // finish observed at cycle 30.
        assert_eq!(cycles, 30);
        assert!(engine.stats().total_conflicts().bank > 0);
    }

    #[test]
    fn bank_hold_time_respected() {
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 0).unwrap(); // hammer bank 0
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 3)]);
        engine.run(&mut w, 100);
        // Grants at cycles 0, 3, 6; finished at 7.
        assert_eq!(engine.stats().total_grants(), 3);
        assert_eq!(engine.stats().port(PortId(0)).conflicts.bank, 4); // cycles 1,2,4,5
    }

    #[test]
    fn trace_records_run() {
        let g = geom(4, 2);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1)).with_trace(8);
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 4)]);
        engine.run(&mut w, 100);
        let t = engine.trace().unwrap();
        assert_eq!(t.row(0, 0, 4), "11..");
        assert_eq!(t.row(1, 0, 4), ".11.");
        assert_eq!(t.row(2, 0, 4), "..11");
    }

    #[test]
    fn two_streams_conflict_free_fig2_shape() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7, simultaneous start at
        // banks 0 and 1. Theorem 3 predicts b_eff = 2: after the transient
        // no conflicts.
        let g = geom(12, 3);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let mut engine = Engine::new(cfg);
        let s1 = StreamSpec::new(&g, 0, 1).unwrap();
        let s2 = StreamSpec::new(&g, 1, 7).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[s1, s2]);
        for _ in 0..240 {
            engine.step(&mut w);
        }
        // Both streams should achieve (close to) one grant per cycle.
        let g0 = engine.stats().port(PortId(0)).grants;
        let g1 = engine.stats().port(PortId(1)).grants;
        assert!(g0 >= 235, "stream 1 starved: {g0}");
        assert!(g1 >= 235, "stream 2 starved: {g1}");
    }

    #[test]
    fn run_outcome_exhaustion() {
        let g = geom(4, 2);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 1).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[spec]);
        assert_eq!(engine.run(&mut w, 10), RunOutcome::CyclesExhausted);
        assert_eq!(engine.now(), 10);
    }

    #[test]
    fn bank_residues_signature() {
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 2, 1).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[spec]);
        engine.step(&mut w); // grant at bank 2, busy for 3
        assert_eq!(engine.bank_residues(), vec![0, 0, 2, 0]);
    }

    #[test]
    fn wait_times_recorded() {
        // d = 0 on m = 4, n_c = 3: grants at 0, 3, 6 with waits 0, 2, 2.
        let g = geom(4, 3);
        let mut engine = Engine::new(SimConfig::single_cpu(g, 1));
        let spec = StreamSpec::new(&g, 0, 0).unwrap();
        let mut w = StreamWorkload::new(vec![StridedStream::finite(&g, spec, 3)]);
        engine.run(&mut w, 100);
        let p = engine.stats().port(PortId(0));
        assert_eq!(p.wait_histogram[0], 1);
        assert_eq!(p.wait_histogram[2], 2);
        assert_eq!(p.max_wait, 2);
        assert_eq!(p.mean_wait(), 4.0 / 3.0);
    }

    #[test]
    fn step_with_outcomes_match_state_outcomes() {
        let g = geom(8, 2);
        let mut engine = Engine::new(SimConfig::one_port_per_cpu(g, 2));
        let s1 = StreamSpec::new(&g, 0, 0).unwrap();
        let s2 = StreamSpec::new(&g, 0, 0).unwrap();
        let mut w = StreamWorkload::infinite(&g, &[s1, s2]);
        let out = engine.step(&mut w);
        assert_eq!(out.len(), engine.state().outcomes().len());
        for (o, ev) in out.iter().zip(engine.state().outcomes()) {
            assert_eq!(*o, (ev.port, ev.request, ev.outcome));
        }
    }
}
