//! A small, deterministic pseudo-random number generator (std only).
//!
//! The simulator needs reproducible randomness for the random-access
//! workloads of the classical models and for randomized tests; it does not
//! need cryptographic quality. This is `splitmix64` (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) — the
//! generator used to seed xoshiro/xorshift families — which passes BigCrush
//! on its own and is a handful of arithmetic instructions per draw.
//!
//! The build environment is offline, so an external `rand` dependency is
//! not an option; this module keeps the same call-site vocabulary
//! (`seed_from_u64`, `gen_range`, `gen_bool`) to stay familiar.

/// A 64-bit splitmix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// A generator with the given seed. Equal seeds give equal sequences.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open). Panics on an empty range.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Debiased multiply-shift (Lemire): rejection keeps the draw uniform
        // even when `span` does not divide 2^64.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from an inclusive range. Panics on an empty range.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_inclusive on empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.gen_range(lo..hi + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against the top 53 bits, the full precision of an f64.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the splitmix64 paper's
        // reference implementation (also used by the xoshiro test vectors).
        let mut r = SmallRng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range_inclusive(0..=5);
            assert!(y <= 5);
        }
        // Every value of a small range is hit.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequencies() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.8)).count();
        assert!((78_000..82_000).contains(&hits), "p=0.8 hit rate: {hits}");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }
}
