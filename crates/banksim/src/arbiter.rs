//! Per-cycle conflict arbitration.
//!
//! Implements the conflict taxonomy of paper §II in three phases:
//!
//! 1. **bank conflicts** — requests to still-active banks are delayed;
//! 2. **section conflicts** — among a CPU's remaining requests, only one per
//!    section can use that CPU's access path; the priority rule picks the
//!    winner (this also covers two same-CPU ports colliding on one inactive
//!    bank, which the paper treats as a section conflict);
//! 3. **simultaneous bank conflicts** — among the per-CPU winners, requests
//!    from different CPUs (hence different paths) colliding on one inactive
//!    bank are arbitrated by the same priority rule.

use crate::config::{PriorityRule, SimConfig};
use crate::request::{ConflictKind, PortId, PortOutcome, Request};

/// Priority rank of a port under `rule` with the given rotation offset;
/// lower rank wins.
#[must_use]
pub fn priority_rank(rule: PriorityRule, rotation: usize, n_ports: usize, port: PortId) -> usize {
    match rule {
        PriorityRule::Fixed => port.0,
        PriorityRule::Cyclic => (port.0 + n_ports - rotation % n_ports) % n_ports,
    }
}

/// Arbitrates one clock period.
///
/// `bank_busy(bank)` reports whether a bank is still active; `requests`
/// holds the pending request of every active port this cycle. Returns one
/// outcome per request, in input order.
#[must_use]
pub fn arbitrate(
    config: &SimConfig,
    rotation: usize,
    bank_busy: impl Fn(u64) -> bool,
    requests: &[(PortId, Request)],
) -> Vec<(PortId, Request, PortOutcome)> {
    let n = config.num_ports();
    let rank = |p: PortId| priority_rank(config.priority, rotation, n, p);

    let mut outcome: Vec<Option<PortOutcome>> = vec![None; requests.len()];

    // Phase 1: bank conflicts.
    for (i, (_, req)) in requests.iter().enumerate() {
        if bank_busy(req.bank) {
            outcome[i] = Some(PortOutcome::Delayed(ConflictKind::Bank));
        }
    }

    // Phase 2: section conflicts within each CPU.
    // Group the surviving requests by (cpu, section).
    let survivors: Vec<usize> = (0..requests.len())
        .filter(|&i| outcome[i].is_none())
        .collect();
    let mut keyed: Vec<(usize, (usize, u64))> = survivors
        .iter()
        .map(|&i| {
            let (port, req) = requests[i];
            (
                i,
                (config.cpu_of(port).0, config.geometry.section_of(req.bank)),
            )
        })
        .collect();
    keyed.sort_by_key(|&(_, key)| key);
    let mut path_winners: Vec<usize> = Vec::with_capacity(keyed.len());
    let mut g = 0;
    while g < keyed.len() {
        let key = keyed[g].1;
        let mut end = g;
        while end < keyed.len() && keyed[end].1 == key {
            end += 1;
        }
        let winner = keyed[g..end]
            .iter()
            .map(|&(i, _)| i)
            .min_by_key(|&i| rank(requests[i].0))
            .expect("group is nonempty");
        for &(i, _) in &keyed[g..end] {
            if i == winner {
                path_winners.push(i);
            } else {
                outcome[i] = Some(PortOutcome::Delayed(ConflictKind::Section));
            }
        }
        g = end;
    }

    // Phase 3: simultaneous bank conflicts across CPUs.
    let mut by_bank: Vec<(u64, usize)> = path_winners
        .iter()
        .map(|&i| (requests[i].1.bank, i))
        .collect();
    by_bank.sort_unstable();
    let mut g = 0;
    while g < by_bank.len() {
        let bank = by_bank[g].0;
        let mut end = g;
        while end < by_bank.len() && by_bank[end].0 == bank {
            end += 1;
        }
        let winner = by_bank[g..end]
            .iter()
            .map(|&(_, i)| i)
            .min_by_key(|&i| rank(requests[i].0))
            .expect("group is nonempty");
        for &(_, i) in &by_bank[g..end] {
            outcome[i] = Some(if i == winner {
                PortOutcome::Granted
            } else {
                PortOutcome::Delayed(ConflictKind::SimultaneousBank)
            });
        }
        g = end;
    }

    requests
        .iter()
        .zip(outcome)
        .map(|(&(port, req), o)| (port, req, o.expect("every request gets an outcome")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::Geometry;

    fn req(port: usize, bank: u64) -> (PortId, Request) {
        (PortId(port), Request { bank })
    }

    fn never_busy(_: u64) -> bool {
        false
    }

    #[test]
    fn no_conflicts_all_granted() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 5)]);
        assert!(out.iter().all(|&(_, _, o)| o == PortOutcome::Granted));
    }

    #[test]
    fn bank_conflict_on_busy_bank() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, |b| b == 3, &[req(0, 3), req(1, 5)]);
        assert_eq!(out[0].2, PortOutcome::Delayed(ConflictKind::Bank));
        assert_eq!(out[1].2, PortOutcome::Granted);
    }

    #[test]
    fn simultaneous_conflict_between_cpus() {
        // Two ports on different CPUs hit the same inactive bank: fixed
        // priority gives it to port 0.
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(
            out[1].2,
            PortOutcome::Delayed(ConflictKind::SimultaneousBank)
        );
    }

    #[test]
    fn same_cpu_same_bank_is_section_conflict() {
        // Paper §III-B: within one CPU there is a single path to the bank's
        // section, so the collision is classified as a section conflict.
        let c = SimConfig::single_cpu(Geometry::unsectioned(8, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Section));
    }

    #[test]
    fn section_conflict_different_banks_same_path() {
        // m = 4, s = 2: banks 1 and 3 are both in section 1; two ports of one
        // CPU need the same path.
        let c = SimConfig::single_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Section));
    }

    #[test]
    fn different_cpus_never_section_conflict() {
        // Same section, different banks, different CPUs: each CPU has its
        // own path, both granted.
        let c = SimConfig::one_port_per_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 1), req(1, 3)]);
        assert!(out.iter().all(|&(_, _, o)| o == PortOutcome::Granted));
    }

    #[test]
    fn cyclic_priority_rotates_winner() {
        let c = SimConfig::one_port_per_cpu(Geometry::unsectioned(8, 2).unwrap(), 2)
            .with_priority(PriorityRule::Cyclic);
        // rotation 0: port 0 wins.
        let out0 = arbitrate(&c, 0, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out0[0].2, PortOutcome::Granted);
        // rotation 1: port 1 holds top priority.
        let out1 = arbitrate(&c, 1, never_busy, &[req(0, 3), req(1, 3)]);
        assert_eq!(out1[1].2, PortOutcome::Granted);
        assert_eq!(
            out1[0].2,
            PortOutcome::Delayed(ConflictKind::SimultaneousBank)
        );
    }

    #[test]
    fn three_way_section_conflict_single_winner() {
        let c = SimConfig::single_cpu(Geometry::new(8, 2, 2).unwrap(), 3);
        let out = arbitrate(&c, 0, never_busy, &[req(0, 0), req(1, 2), req(2, 4)]);
        let granted = out
            .iter()
            .filter(|&&(_, _, o)| o == PortOutcome::Granted)
            .count();
        assert_eq!(granted, 1);
        assert_eq!(out[0].2, PortOutcome::Granted);
    }

    #[test]
    fn bank_conflict_checked_before_section() {
        // A port whose bank is busy must record a bank conflict even if it
        // would also have lost the path arbitration.
        let c = SimConfig::single_cpu(Geometry::new(4, 2, 2).unwrap(), 2);
        let out = arbitrate(&c, 0, |b| b == 3, &[req(0, 1), req(1, 3)]);
        assert_eq!(out[0].2, PortOutcome::Granted);
        assert_eq!(out[1].2, PortOutcome::Delayed(ConflictKind::Bank));
    }

    #[test]
    fn priority_rank_wrapping() {
        assert_eq!(priority_rank(PriorityRule::Fixed, 7, 4, PortId(2)), 2);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 0, 4, PortId(2)), 2);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 2, 4, PortId(2)), 0);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 3, 4, PortId(0)), 1);
        assert_eq!(priority_rank(PriorityRule::Cyclic, 5, 4, PortId(1)), 0);
    }
}
