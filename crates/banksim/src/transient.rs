//! Startup-transient analysis.
//!
//! Paper §III: "Neglecting startup times, we compute the effective
//! bandwidth for the cyclic state." This module quantifies exactly what
//! was neglected: how many clock periods a stream pair needs to *reach*
//! its cyclic state, and how much bandwidth the transient costs a finite
//! vector of length `n` relative to the asymptotic rate.
//!
//! For short vectors (the X-MP's 64-element registers!) the transient can
//! matter: a pair that synchronises into a conflict-free cycle after 20
//! periods still pays those conflicts on every 64-element strip.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::steady::{measure_steady_state, SteadyState, SteadyStateError};
use crate::streams::{StreamWorkload, StridedStream};
use vecmem_analytic::StreamSpec;

/// Transient statistics of a stream pair over all relative start banks.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientProfile {
    /// Transient length (clock periods before the cyclic state) per start
    /// bank `b2` of the second stream.
    pub transients: Vec<u64>,
    /// Longest transient.
    pub max: u64,
    /// Mean transient.
    pub mean: f64,
}

/// Measures the transient for every relative start position of a pair.
///
/// # Errors
/// Returns a [`SteadyStateError`] when any start position fails to reach a
/// cyclic state within `max_cycles`.
pub fn transient_profile(
    config: &SimConfig,
    d1: u64,
    d2: u64,
    max_cycles: u64,
) -> Result<TransientProfile, SteadyStateError> {
    let m = config.geometry.banks();
    let mut transients = Vec::with_capacity(m as usize);
    for b2 in 0..m {
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: d1 % m,
            },
            StreamSpec {
                start_bank: b2,
                distance: d2 % m,
            },
        ];
        let ss: SteadyState = measure_steady_state(config, &specs, max_cycles)?;
        transients.push(ss.transient);
    }
    let max = transients.iter().copied().max().unwrap_or(0);
    let mean = transients.iter().sum::<u64>() as f64 / transients.len().max(1) as f64;
    Ok(TransientProfile {
        transients,
        max,
        mean,
    })
}

/// Effective bandwidth of a *finite* transfer of `n` elements per stream
/// (both streams stop after `n` grants), measured end to end — the number
/// the asymptotic model approximates.
#[must_use]
pub fn finite_vector_bandwidth(config: &SimConfig, specs: &[StreamSpec], n: u64) -> f64 {
    let geom = config.geometry;
    let mut engine = Engine::new(config.clone());
    let mut workload = StreamWorkload::new(
        specs
            .iter()
            .map(|&s| StridedStream::finite(&geom, s, n))
            .collect(),
    );
    let bound = n * geom.bank_cycle() * specs.len() as u64 + 10_000;
    let cycles = engine
        .run(&mut workload, bound)
        .finished_cycles()
        .expect("finite vectors finish");
    (n * specs.len() as u64) as f64 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmem_analytic::{Geometry, Ratio};

    #[test]
    fn conflict_free_pairs_have_short_transients() {
        // Fig. 2: synchronisation happens within roughly one bank-revisit
        // period from any start.
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let p = transient_profile(&config, 1, 7, 1_000_000).unwrap();
        assert_eq!(p.transients.len(), 12);
        assert!(p.max <= 24, "sync should be fast: {p:?}");
    }

    #[test]
    fn finite_vectors_approach_asymptotic_rate() {
        // Fig. 2's pair: asymptotic b_eff = 2. A 64-element strip already
        // achieves > 1.8; 1024 elements get within 2%.
        let geom = Geometry::unsectioned(12, 3).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 1,
                distance: 7,
            },
        ];
        let short = finite_vector_bandwidth(&config, &specs, 64);
        let long = finite_vector_bandwidth(&config, &specs, 1024);
        assert!(short > 1.8, "64-element strip: {short}");
        assert!(long > 1.96, "1024 elements: {long}");
        assert!(long > short, "longer vectors amortise the transient");
    }

    #[test]
    fn barrier_pairs_finite_rate_shows_tail_effect() {
        // The Fig. 3 barrier pair: during coexistence the pair runs at the
        // 7/6 asymptote with stream 2 at only 1/6 — so stream 1 finishes
        // its n elements first and stream 2 then runs SOLO at full rate.
        // The end-to-end finite rate therefore sits below the coexistence
        // asymptote (2n elements over ≈ n + (n - n/6) cycles ≈ 1.09),
        // a tail effect the infinite-stream model does not see.
        let geom = Geometry::unsectioned(13, 6).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let specs = [
            StreamSpec {
                start_bank: 0,
                distance: 1,
            },
            StreamSpec {
                start_bank: 0,
                distance: 6,
            },
        ];
        let rate = finite_vector_bandwidth(&config, &specs, 1024);
        let expected = 2.0 * 1024.0 / (1024.0 + (1024.0 - 1024.0 / 6.0));
        assert!(
            (rate - expected).abs() < 0.03,
            "rate {rate} vs tail model {expected}"
        );
        assert!(
            rate < Ratio::new(7, 6).to_f64(),
            "below the coexistence asymptote"
        );
    }

    #[test]
    fn transient_profile_deterministic() {
        let geom = Geometry::unsectioned(13, 4).unwrap();
        let config = SimConfig::one_port_per_cpu(geom, 2);
        let a = transient_profile(&config, 1, 3, 1_000_000).unwrap();
        let b = transient_profile(&config, 1, 3, 1_000_000).unwrap();
        assert_eq!(a, b);
        assert!(a.mean <= a.max as f64);
    }
}
