//! ASCII trace rendering in the style of the paper's Figs. 2–9.
//!
//! Rows are banks, columns are clock periods. A digit `1`–`9` marks a bank
//! occupied by (1-based) port *n* for the `n_c` periods following a grant.
//! A `<` marks a higher-numbered port delayed by a bank or simultaneous
//! conflict at that bank, `>` a lower-numbered one (the paper's Figs. 3–6
//! convention: `<` depicts a delay of stream "2" by stream "1", `>` the
//! inverse), and `*` marks a section conflict (Fig. 8). Idle cells print
//! as `.`.

use crate::request::{ConflictKind, PortId};

/// Grid recorder filled in by the engine during a traced run.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    banks: usize,
    capacity: u64,
    /// Cells indexed `[bank][cycle]`.
    grid: Vec<Vec<u8>>,
}

const IDLE: u8 = b'.';

impl TraceRecorder {
    /// A recorder for `banks` banks covering cycles `0..capacity`.
    #[must_use]
    pub fn new(banks: u64, capacity: u64) -> Self {
        Self {
            banks: banks as usize,
            capacity,
            grid: vec![vec![IDLE; capacity as usize]; banks as usize],
        }
    }

    /// Marks a grant: `port` occupies `bank` for `hold` cycles from `cycle`.
    ///
    /// Out-of-range banks and cycles past the capacity are ignored rather
    /// than panicking: the recorder is a best-effort visualisation sink and
    /// must not bring down a run over a bad index.
    pub fn mark_grant(&mut self, bank: u64, cycle: u64, hold: u64, port: PortId) {
        if bank as usize >= self.banks {
            return;
        }
        let digit = Self::digit(port);
        for t in cycle..(cycle + hold).min(self.capacity) {
            let cell = &mut self.grid[bank as usize][t as usize];
            // At the grant cycle itself the digit wins (a simultaneous
            // loser's mark is painted first and overwritten); in later
            // cells a recorded delay marker stays on top of the busy
            // period, as in the paper's figures.
            if t == cycle || *cell == IDLE || cell.is_ascii_digit() {
                *cell = digit;
            }
        }
    }

    /// Marks a delayed request of `port` at `bank` in `cycle`. Out-of-range
    /// banks and cycles are ignored (see [`Self::mark_grant`]).
    pub fn mark_delay(&mut self, bank: u64, cycle: u64, port: PortId, kind: ConflictKind) {
        if bank as usize >= self.banks || cycle >= self.capacity {
            return;
        }
        let symbol = match kind {
            ConflictKind::Section => b'*',
            ConflictKind::Bank | ConflictKind::SimultaneousBank => {
                if port.0 == 0 {
                    b'>'
                } else {
                    b'<'
                }
            }
        };
        self.grid[bank as usize][cycle as usize] = symbol;
    }

    fn digit(port: PortId) -> u8 {
        debug_assert!(port.0 < 9, "trace digits support at most 9 ports");
        b'1' + port.0 as u8
    }

    /// The raw symbol at `(bank, cycle)`.
    #[must_use]
    pub fn cell(&self, bank: u64, cycle: u64) -> char {
        self.grid[bank as usize][cycle as usize] as char
    }

    /// Renders cycles `from..to` as one row per bank, in the paper's layout.
    #[must_use]
    pub fn render(&self, from: u64, to: u64) -> String {
        let to = to.min(self.capacity);
        let mut out = String::new();
        for (bank, row) in self.grid.iter().enumerate() {
            out.push_str(&format!("bank {bank:>3}  "));
            for t in from..to {
                out.push(row[t as usize] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the full recorded window.
    #[must_use]
    pub fn render_all(&self) -> String {
        self.render(0, self.capacity)
    }

    /// One bank row (without the label) over `from..to` — convenient for
    /// golden tests against the paper's figures.
    #[must_use]
    pub fn row(&self, bank: u64, from: u64, to: u64) -> String {
        let to = to.min(self.capacity);
        (from..to).map(|t| self.cell(bank, t)).collect()
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Recorded capacity in cycles.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_paint_hold_period() {
        let mut t = TraceRecorder::new(4, 10);
        t.mark_grant(2, 1, 3, PortId(0));
        assert_eq!(t.row(2, 0, 6), ".111..");
        t.mark_grant(2, 4, 3, PortId(1));
        assert_eq!(t.row(2, 0, 8), ".111222.");
    }

    #[test]
    fn delays_override_busy_digits() {
        let mut t = TraceRecorder::new(2, 8);
        t.mark_grant(0, 0, 6, PortId(0));
        t.mark_delay(0, 1, PortId(1), ConflictKind::Bank);
        t.mark_delay(0, 2, PortId(1), ConflictKind::Bank);
        assert_eq!(t.row(0, 0, 6), "1<<111");
        // A grant's *first* cell always shows the digit (the engine paints
        // same-cycle losers first, then the winner on top)…
        t.mark_grant(0, 1, 2, PortId(0));
        assert_eq!(t.cell(0, 1), '1');
        // …but its later busy cells never clobber recorded delay marks.
        t.mark_delay(1, 4, PortId(1), ConflictKind::Bank);
        t.mark_grant(1, 3, 4, PortId(0));
        assert_eq!(t.row(1, 3, 7), "1<11");
    }

    #[test]
    fn delay_symbols_by_port_and_kind() {
        let mut t = TraceRecorder::new(1, 4);
        t.mark_delay(0, 0, PortId(0), ConflictKind::Bank);
        t.mark_delay(0, 1, PortId(1), ConflictKind::SimultaneousBank);
        t.mark_delay(0, 2, PortId(1), ConflictKind::Section);
        assert_eq!(t.row(0, 0, 4), "><*.");
    }

    #[test]
    fn render_includes_labels() {
        let mut t = TraceRecorder::new(2, 4);
        t.mark_grant(1, 0, 2, PortId(0));
        let s = t.render_all();
        assert!(s.contains("bank   0  ...."));
        assert!(s.contains("bank   1  11.."));
    }

    #[test]
    fn grants_clip_at_capacity() {
        let mut t = TraceRecorder::new(1, 4);
        t.mark_grant(0, 3, 5, PortId(2));
        assert_eq!(t.row(0, 0, 4), "...3");
        t.mark_delay(0, 9, PortId(0), ConflictKind::Bank); // ignored, too late
    }

    #[test]
    fn out_of_range_banks_are_rejected_not_panicking() {
        let mut t = TraceRecorder::new(4, 8);
        t.mark_grant(4, 0, 3, PortId(0)); // bank index == banks: out of range
        t.mark_grant(u64::MAX, 0, 3, PortId(0));
        t.mark_delay(4, 1, PortId(1), ConflictKind::Bank);
        t.mark_delay(99, 1, PortId(1), ConflictKind::Section);
        for bank in 0..4 {
            assert_eq!(t.row(bank, 0, 8), "........", "bank {bank} must stay idle");
        }
    }

    #[test]
    fn grant_overwrites_loser_marker_at_grant_cycle() {
        // The engine's convention: within one clock period delays are
        // painted first, then the winner's grant digit goes on top at the
        // grant cycle itself — later busy cells keep the delay marks.
        let mut t = TraceRecorder::new(1, 6);
        t.mark_delay(0, 2, PortId(1), ConflictKind::SimultaneousBank);
        t.mark_grant(0, 2, 3, PortId(0));
        assert_eq!(t.cell(0, 2), '1', "grant digit must win the grant cycle");
        // A delay recorded on a *later* busy cell survives the grant paint.
        let mut t = TraceRecorder::new(1, 6);
        t.mark_delay(0, 3, PortId(1), ConflictKind::Bank);
        t.mark_grant(0, 2, 3, PortId(0));
        assert_eq!(t.row(0, 2, 5), "1<1");
    }
}
