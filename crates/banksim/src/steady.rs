//! Exact steady-state (cyclic state) effective bandwidth of strided
//! streams.
//!
//! The detector itself — Brent's cycle-finding over the packed simulator
//! state's incremental hash, in O(state) memory — lives in
//! [`vecmem_simcore::steady`] and is re-exported here together with its
//! result and error types. This module adds the stream-level entry points
//! the paper's figures are phrased in: one [`StreamSpec`] per port, start
//! bank sweeps, and start-time offsets — plus the generalized
//! [`measure_steady_state_patterns`] entry taking one
//! [`PatternSpec`](vecmem_simcore::pattern::PatternSpec) per port (gather,
//! burst, DRAM bank models).

use crate::config::SimConfig;
use crate::streams::{StreamWorkload, StridedStream};
use vecmem_analytic::{Geometry, StreamSpec};
use vecmem_simcore::pattern::{PatternSpec, PatternWorkload};

pub use vecmem_simcore::steady::{
    measure_steady_state_workload, ObservableWorkload, SteadyState, SteadyStateError,
};

/// Runs infinite streams until the simulator state recurs and returns the
/// exact cyclic-state bandwidth.
///
/// `specs[i]` is the stream of port `i`; every port of the configuration
/// must have a stream. `max_cycles` bounds the search (the cycle is
/// normally found within a few `lcm`-scale periods).
///
/// Since the workload-layer generalisation the streams run as
/// [`StridePattern`](vecmem_simcore::pattern::StridePattern)s through the
/// generic [`PatternWorkload`] adapter — bitwise-identical packed state,
/// hash and stats to the historical stride-specialised workload.
///
/// # Errors
/// Returns a [`SteadyStateError`] when the simulator state does not recur
/// within `max_cycles`.
pub fn measure_steady_state(
    config: &SimConfig,
    specs: &[StreamSpec],
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    assert_eq!(
        specs.len(),
        config.num_ports(),
        "one stream per configured port required"
    );
    let mut workload = PatternWorkload::strided(&config.geometry, specs);
    measure_steady_state_workload(config, &mut workload, 0, max_cycles)
}

/// Generalized steady-state entry: one [`PatternSpec`] per port — stride,
/// indexed gather/scatter or strided burst — instantiated against
/// `config`'s geometry *and bank model* (under
/// [`BankModel::Dram`](crate::BankModel) the patterns derive per-request
/// rows and the packed state tracks open rows).
///
/// Periodic pattern sets converge to an exact cyclic state
/// ([`SteadyState::exact`] = `true`); a workload containing an aperiodic
/// pattern (pseudo-random gather) is measured with the budgeted windowed
/// estimate instead (`exact` = `false`).
///
/// # Errors
/// Returns a [`SteadyStateError`] when the simulator state neither recurs
/// nor can be estimated within `max_cycles`.
pub fn measure_steady_state_patterns(
    config: &SimConfig,
    specs: &[PatternSpec],
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    assert_eq!(
        specs.len(),
        config.num_ports(),
        "one pattern per configured port required"
    );
    let mut workload = PatternWorkload::from_specs(config, specs);
    measure_steady_state_workload(config, &mut workload, 0, max_cycles)
}

/// Convenience wrapper: two infinite streams on ports of *different* CPUs
/// over an unsectioned view (the §III-B "equal sections and banks" setting).
///
/// # Errors
/// Returns a [`SteadyStateError`] when no cyclic state is found within
/// `max_cycles`.
pub fn measure_pair_cross_cpu(
    geom: &Geometry,
    s1: StreamSpec,
    s2: StreamSpec,
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    let config = SimConfig::one_port_per_cpu(*geom, 2);
    measure_steady_state(&config, &[s1, s2], max_cycles)
}

/// Convenience wrapper: two infinite streams on ports of the *same* CPU
/// (section conflicts possible when `s < m`).
///
/// # Errors
/// Returns a [`SteadyStateError`] when no cyclic state is found within
/// `max_cycles`.
pub fn measure_pair_same_cpu(
    geom: &Geometry,
    s1: StreamSpec,
    s2: StreamSpec,
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    let config = SimConfig::single_cpu(*geom, 2);
    measure_steady_state(&config, &[s1, s2], max_cycles)
}

/// Measures a single stream's steady state (validates §III-A).
///
/// # Errors
/// Returns a [`SteadyStateError`] when no cyclic state is found within
/// `max_cycles`.
pub fn measure_single(
    geom: &Geometry,
    spec: StreamSpec,
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    let config = SimConfig::single_cpu(*geom, 1);
    measure_steady_state(&config, &[spec], max_cycles)
}

/// Delay variants of a stream pair: sweeps stream 2's start bank over all
/// `m` positions and reports each steady state. Used to verify the
/// "synchronization" claim of Theorem 3 and the uniqueness claims of
/// Theorems 6/7.
///
/// # Errors
/// Returns a [`SteadyStateError`] when any start position fails to reach a
/// cyclic state within `max_cycles`.
pub fn sweep_start_banks(
    config: &SimConfig,
    d1: u64,
    d2: u64,
    max_cycles: u64,
) -> Result<Vec<SteadyState>, SteadyStateError> {
    let geom = config.geometry;
    let m = geom.banks();
    let mut out = Vec::with_capacity(m as usize);
    for b2 in 0..m {
        let s1 = StreamSpec {
            start_bank: 0,
            distance: d1 % m,
        };
        let s2 = StreamSpec {
            start_bank: b2,
            distance: d2 % m,
        };
        out.push(measure_steady_state(config, &[s1, s2], max_cycles)?);
    }
    Ok(out)
}

/// Like [`measure_steady_state`] but with per-stream start-cycle offsets
/// (relative positions in *time* rather than space).
///
/// # Errors
/// Returns a [`SteadyStateError`] when the simulator state does not recur
/// within `max_cycles`.
pub fn measure_steady_state_with_delays(
    config: &SimConfig,
    specs: &[(StreamSpec, u64)],
    max_cycles: u64,
) -> Result<SteadyState, SteadyStateError> {
    assert_eq!(specs.len(), config.num_ports());
    let geom = config.geometry;
    let mut workload = StreamWorkload::new(
        specs
            .iter()
            .map(|&(spec, at)| StridedStream::infinite(&geom, spec).starting_at(at))
            .collect(),
    );
    // Advance past all start offsets first so the state core (which does
    // not include absolute time) is valid.
    let warmup = specs.iter().map(|&(_, at)| at).max().unwrap_or(0);
    measure_steady_state_workload(config, &mut workload, warmup, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::request::PortId;
    use crate::rng::SmallRng;
    use crate::stats::ConflictCounts;
    use std::collections::HashMap;
    use vecmem_analytic::Ratio;

    fn geom(m: u64, nc: u64) -> Geometry {
        Geometry::unsectioned(m, nc).unwrap()
    }

    fn spec(g: &Geometry, b: u64, d: u64) -> StreamSpec {
        StreamSpec::new(g, b, d).unwrap()
    }

    #[derive(Clone)]
    struct Snapshot {
        cycle: u64,
        grants: Vec<u64>,
        conflicts: ConflictCounts,
    }

    /// The pre-Brent detector, retained verbatim as the differential
    /// reference: hash every visited state into a map and report the
    /// window between the two visits of the first repeated state. O(cycles)
    /// memory — the cost the production solver exists to avoid.
    fn reference_measure<W: ObservableWorkload>(
        config: &SimConfig,
        workload: &mut W,
        warmup: u64,
        max_cycles: u64,
    ) -> Result<SteadyState, SteadyStateError> {
        let mut engine = Engine::new(config.clone());
        for _ in 0..warmup {
            engine.step(workload);
        }
        let mut seen: HashMap<Vec<u64>, Snapshot> = HashMap::new();
        loop {
            let mut key: Vec<u64> = engine.bank_residues().iter().map(|&r| r as u64).collect();
            key.extend(workload.state_signature());
            key.push(engine.rotation() as u64);
            let grants: Vec<u64> = (0..config.num_ports())
                .map(|p| engine.stats().port(PortId(p)).grants)
                .collect();
            let snapshot = Snapshot {
                cycle: engine.now(),
                grants,
                conflicts: engine.stats().total_conflicts(),
            };
            if let Some(first) = seen.get(&key) {
                let period = snapshot.cycle - first.cycle;
                let per_port: Vec<Ratio> = snapshot
                    .grants
                    .iter()
                    .zip(&first.grants)
                    .map(|(&now, &then)| Ratio::new(now - then, period))
                    .collect();
                let grants_per_period: u64 = snapshot
                    .grants
                    .iter()
                    .zip(&first.grants)
                    .map(|(&now, &then)| now - then)
                    .sum();
                return Ok(SteadyState {
                    beff: Ratio::new(grants_per_period, period),
                    transient: first.cycle,
                    period,
                    grants_per_period,
                    per_port,
                    conflicts_per_period: snapshot.conflicts - first.conflicts,
                    exact: true,
                });
            }
            if engine.now() >= max_cycles + warmup {
                return Err(SteadyStateError::NotConverged { cycles: max_cycles });
            }
            seen.insert(key, snapshot);
            engine.step(workload);
        }
    }

    #[test]
    fn single_stream_steady_states() {
        // §III-A: b_eff = 1 for r >= n_c, r/n_c otherwise.
        let g = geom(16, 4);
        let full = measure_single(&g, spec(&g, 0, 1), 10_000).unwrap();
        assert_eq!(full.beff, Ratio::integer(1));
        assert!(full.conflict_free());

        let half = measure_single(&g, spec(&g, 0, 8), 10_000).unwrap();
        assert_eq!(half.beff, Ratio::new(1, 2)); // r = 2, n_c = 4
        assert!(!half.conflict_free());

        let quarter = measure_single(&g, spec(&g, 3, 0), 10_000).unwrap();
        assert_eq!(quarter.beff, Ratio::new(1, 4)); // r = 1
    }

    #[test]
    fn fig2_conflict_free_pair() {
        // Fig. 2: m = 12, n_c = 3, d1 = 1, d2 = 7: b_eff = 2.
        let g = geom(12, 3);
        let ss = measure_pair_cross_cpu(&g, spec(&g, 0, 1), spec(&g, 1, 7), 10_000).unwrap();
        assert_eq!(ss.beff, Ratio::integer(2));
        assert!(ss.conflict_free());
    }

    #[test]
    fn fig3_barrier_pair() {
        // Fig. 3: m = 13, n_c = 6, d1 = 1, d2 = 6 with starts realising the
        // barrier: b_eff = 1 + d1/d2 = 7/6.
        let g = geom(13, 6);
        let ss = measure_pair_cross_cpu(&g, spec(&g, 0, 1), spec(&g, 0, 6), 100_000).unwrap();
        assert_eq!(ss.beff, Ratio::new(7, 6));
        // Stream 1 runs conflict-free at rate 1; stream 2 is the delayed one.
        assert_eq!(ss.per_port[0], Ratio::integer(1));
        assert_eq!(ss.per_port[1], Ratio::new(1, 6));
    }

    #[test]
    fn disjoint_sets_full_bandwidth() {
        // m = 12, d1 = d2 = 2, odd offset: even/odd banks never meet.
        let g = geom(12, 4);
        let ss = measure_pair_cross_cpu(&g, spec(&g, 0, 2), spec(&g, 1, 2), 10_000).unwrap();
        assert_eq!(ss.beff, Ratio::integer(2));
        assert!(ss.conflict_free());
    }

    #[test]
    fn start_bank_sweep_respects_theorem3_sync() {
        // d1 = 1, d2 = 7 on m = 12, n_c = 3 satisfies Theorem 3, so *every*
        // relative start position must converge to b_eff = 2.
        let g = geom(12, 3);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        for (b2, ss) in sweep_start_banks(&cfg, 1, 7, 100_000)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            assert_eq!(ss.beff, Ratio::integer(2), "b2 = {b2}");
        }
    }

    #[test]
    fn time_offsets_equivalent_to_space_offsets() {
        // Paper: "a relative position in time can be transformed to a
        // relative position in space". Delaying stream 2 (d2 = 3) by one
        // cycle is the same as moving its start bank back by d2: in the
        // start-dependent Fig. 5/6 case (m = 13, n_c = 4) even the per-port
        // split must match.
        let g = geom(13, 4);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let a = measure_steady_state_with_delays(
            &cfg,
            &[(spec(&g, 0, 1), 0), (spec(&g, 0, 3), 1)],
            100_000,
        )
        .unwrap();
        let b = measure_steady_state(&cfg, &[spec(&g, 0, 1), spec(&g, 10, 3)], 100_000).unwrap();
        assert_eq!(a.beff, b.beff);
        assert_eq!(a.per_port, b.per_port);
    }

    #[test]
    fn not_converged_is_unreachable_for_small_systems() {
        let g = geom(8, 2);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        for d1 in 0..8 {
            for d2 in 0..8 {
                let r = sweep_start_banks(&cfg, d1, d2, 1_000_000);
                assert!(r.is_ok(), "d1={d1} d2={d2}");
            }
        }
    }

    #[test]
    fn transient_and_period_reported() {
        let g = geom(12, 3);
        let ss = measure_pair_cross_cpu(&g, spec(&g, 0, 1), spec(&g, 0, 7), 10_000).unwrap();
        assert!(ss.period > 0);
        assert_eq!(ss.grants_per_period, 2 * ss.period);
    }

    #[test]
    fn not_converged_reports_the_budget_from_every_entry_point() {
        // One semantics for `NotConverged::cycles`: the exhausted search
        // budget, regardless of how much warmup the entry point inserted.
        let g = geom(16, 4);
        let cfg = SimConfig::one_port_per_cpu(g, 2);
        let budget = 2;
        let specs = [spec(&g, 0, 1), spec(&g, 0, 3)];

        let via_specs = measure_steady_state(&cfg, &specs, budget).unwrap_err();
        assert_eq!(via_specs, SteadyStateError::NotConverged { cycles: budget });

        // The delayed entry point warms up 5 cycles first; the reported
        // budget must not be inflated by them.
        let via_delays =
            measure_steady_state_with_delays(&cfg, &[(specs[0], 0), (specs[1], 5)], budget)
                .unwrap_err();
        assert_eq!(
            via_delays,
            SteadyStateError::NotConverged { cycles: budget }
        );
        assert_eq!(via_delays.to_string(), "no cyclic state within 2 cycles");
    }

    /// Satellite property: on random geometries and stream sets, Brent's
    /// bounded-memory detector returns bitwise-identical results to the
    /// retained hash-map reference detector.
    #[test]
    fn brent_matches_reference_detector_on_random_systems() {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0bed);
        for case in 0..60 {
            let m = rng.gen_range_inclusive(2..=24);
            let nc = rng.gen_range_inclusive(1..=6);
            let ports = rng.gen_range_inclusive(1..=3) as usize;
            let g = geom(m, nc);
            let cfg = if rng.gen_bool(0.5) {
                SimConfig::single_cpu(g, ports)
            } else {
                SimConfig::one_port_per_cpu(g, ports)
            };
            let specs: Vec<StreamSpec> = (0..ports)
                .map(|_| spec(&g, rng.gen_range(0..m), rng.gen_range(0..m)))
                .collect();
            let warmup = rng.gen_range(0..4);
            let label =
                format!("case {case}: m={m} nc={nc} ports={ports} specs={specs:?} warmup={warmup}");

            let mut w1 = StreamWorkload::infinite(&g, &specs);
            let brent = measure_steady_state_workload(&cfg, &mut w1, warmup, 500_000);
            let mut w2 = StreamWorkload::infinite(&g, &specs);
            let reference = reference_measure(&cfg, &mut w2, warmup, 500_000);

            let (b, r) = (brent.unwrap(), reference.unwrap());
            assert_eq!(b.beff, r.beff, "{label}");
            assert_eq!(b.transient, r.transient, "{label}");
            assert_eq!(b.period, r.period, "{label}");
            assert_eq!(b.grants_per_period, r.grants_per_period, "{label}");
            assert_eq!(b.per_port, r.per_port, "{label}");
            assert_eq!(b.conflicts_per_period, r.conflicts_per_period, "{label}");
        }
    }

    /// Cyclic priority exercises the rotation word of the state core; the
    /// two detectors must still agree exactly.
    #[test]
    fn brent_matches_reference_under_cyclic_priority() {
        use crate::config::PriorityRule;
        let mut rng = SmallRng::seed_from_u64(0xc1c1_0bed);
        for case in 0..20 {
            let m = rng.gen_range_inclusive(2..=16);
            let nc = rng.gen_range_inclusive(1..=4);
            let g = geom(m, nc);
            let cfg = SimConfig::one_port_per_cpu(g, 2).with_priority(PriorityRule::Cyclic);
            let specs = vec![
                spec(&g, rng.gen_range(0..m), rng.gen_range(0..m)),
                spec(&g, rng.gen_range(0..m), rng.gen_range(0..m)),
            ];
            let label = format!("case {case}: m={m} nc={nc} specs={specs:?}");

            let mut w1 = StreamWorkload::infinite(&g, &specs);
            let b = measure_steady_state_workload(&cfg, &mut w1, 0, 500_000).unwrap();
            let mut w2 = StreamWorkload::infinite(&g, &specs);
            let r = reference_measure(&cfg, &mut w2, 0, 500_000).unwrap();
            assert_eq!(
                (
                    b.beff,
                    b.transient,
                    b.period,
                    &b.per_port,
                    b.conflicts_per_period
                ),
                (
                    r.beff,
                    r.transient,
                    r.period,
                    &r.per_port,
                    r.conflicts_per_period
                ),
                "{label}"
            );
        }
    }
}
