//! # vecmem
//!
//! Facade crate for the reproduction of Oed & Lange (1985), *"On the
//! Effective Bandwidth of Interleaved Memories in Vector Processor
//! Systems"* (IEEE Trans. Computers C-34(10)).
//!
//! The workspace is organised as:
//!
//! * [`analytic`] — the paper's analytical model (Theorems 1–9, eq. 29/32);
//! * [`simcore`] — the pure simulation core: the packed
//!   [`simcore::SimState`] (bank residues, priority rotation, workload
//!   positions, wait counters in one hashed buffer), the single
//!   [`simcore::step::step`] kernel every simulator path funnels through,
//!   and bounded-memory cyclic-state detection (Brent's algorithm over the
//!   state's incremental hash);
//! * [`banksim`] — cycle-accurate simulator of the interleaved, sectioned
//!   memory system with vector access ports, built on [`simcore`]: the
//!   stats/trace-keeping engine, strided streams, steady-state entry
//!   points, random workloads;
//! * [`vproc`] — vector-processor model (Cray X-MP style) used for the
//!   paper's §IV triad experiment;
//! * [`skew`] — bank-skewing schemes (the conclusion's suggested remedy);
//! * [`exec`] — execution layer: deterministic work-stealing runner,
//!   isomorphism-keyed result cache and declarative sweep builder shared by
//!   every table/figure generator and heavy test sweep;
//! * [`oracle`] — differential verification: a naive reference simulator,
//!   a lockstep diff harness, the exhaustive small-geometry conformance
//!   sweep and a coverage-guided random explorer (`vecmem verify`).
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench` for the harnesses regenerating every figure of the paper.

pub use vecmem_analytic as analytic;
pub use vecmem_banksim as banksim;
pub use vecmem_exec as exec;
pub use vecmem_oracle as oracle;
pub use vecmem_simcore as simcore;
pub use vecmem_skew as skew;
pub use vecmem_vproc as vproc;

pub use vecmem_analytic::{Geometry, Ratio, SectionMapping, StreamSpec};
