//! Skewing-scheme comparison — the remedy suggested by the paper's
//! conclusion, measured exactly.
//!
//! ```text
//! cargo run --release --example skewing
//! ```
//!
//! Evaluates plain interleaving, XOR-folded interleaving, the classic
//! linear skew and prime-way interleaving on a 16-bank-budget memory
//! (n_c = 4) over strides 1..=16, printing the solo bandwidth and the
//! bandwidth against a unit-stride competitor for each.

use vecmem::skew::{
    eval::stride_table, BankMapping, Interleaved, LinearSkew, PrimeInterleaved, XorFold,
};

fn main() {
    let schemes: Vec<Box<dyn BankMapping>> = vec![
        Box::new(Interleaved { banks: 16 }),
        Box::new(XorFold::new(16)),
        Box::new(LinearSkew::classic(16)),
        Box::new(PrimeInterleaved::largest_prime_at_most(16).expect("prime exists")),
    ];

    for scheme in &schemes {
        println!("=== {} ===", scheme.name());
        println!("{:>7} {:>10} {:>16}", "stride", "solo", "vs unit-stride");
        let rows = stride_table(scheme.as_ref(), 4, 16, 2_000_000).expect("converges");
        let mut perfect = 0;
        for row in &rows {
            if row.solo.num() == row.solo.den() {
                perfect += 1;
            }
            println!(
                "{:>7} {:>10} {:>16}",
                row.stride,
                row.solo.to_string(),
                row.against_unit.to_string()
            );
        }
        println!("strides at full solo bandwidth: {perfect}/16\n");
    }

    println!(
        "Summary: plain interleaving collapses on power-of-two strides;\n\
         XOR folding and prime-way interleaving recover them (at a small\n\
         cost elsewhere); the classic skew targets matrix columns (stride m)."
    );
}
