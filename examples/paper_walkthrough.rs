//! A guided tour of the paper, theorem by theorem, each claim checked
//! live against the cycle-accurate simulator.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use vecmem::analytic::barrier::barrier_schedule;
use vecmem::analytic::isomorphism::canonicalize;
use vecmem::analytic::pair::{
    classify_pair, conflict_free_condition, disjoint_sets_achievable, PairClass,
};
use vecmem::analytic::sections::{analyze_sectioned_pair, eq32_condition};
use vecmem::analytic::{predict_single, Geometry, Ratio, StreamSpec};
use vecmem::banksim::steady::{measure_pair_cross_cpu, measure_pair_same_cpu, measure_single};

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "FAIL" });
    assert!(ok, "{label}");
}

fn main() {
    println!("== Theorem 1: return numbers ==");
    let xmp = Geometry::cray_xmp();
    for d in [1u64, 2, 8, 9] {
        let r = xmp.return_number(d);
        println!("  d = {d}: r = m/gcd(m,d) = {r}");
    }

    println!("\n== §III-A: one access stream ==");
    let g16 = Geometry::unsectioned(16, 4).unwrap();
    for d in [1u64, 8, 0] {
        let spec = StreamSpec::new(&g16, 0, d).unwrap();
        let predicted = predict_single(&g16, &spec);
        let simulated = measure_single(&g16, spec, 100_000).unwrap().beff;
        check(
            &format!("d = {d}: predicted {predicted} = simulated {simulated}"),
            predicted == simulated,
        );
    }

    println!("\n== Theorem 2: disjoint access sets iff gcd(m,d1,d2) > 1 ==");
    let g12 = Geometry::unsectioned(12, 3).unwrap();
    check(
        "gcd(12,2,4) = 2 > 1: achievable",
        disjoint_sets_achievable(&g12, 2, 4),
    );
    check(
        "gcd(12,1,7) = 1: not achievable",
        !disjoint_sets_achievable(&g12, 1, 7),
    );

    println!("\n== Theorem 3: conflict-freeness (Fig. 2) ==");
    let s1 = StreamSpec::new(&g12, 0, 1).unwrap();
    let s2 = StreamSpec::new(&g12, 1, 7).unwrap();
    check("gcd(12, 6) = 6 >= 2*3", conflict_free_condition(&g12, 1, 7));
    let ss = measure_pair_cross_cpu(&g12, s1, s2, 100_000).unwrap();
    check(
        &format!("simulated b_eff = {} = 2", ss.beff),
        ss.beff == Ratio::integer(2),
    );
    // Synchronization: every relative start works.
    let all_sync = (0..12).all(|b2| {
        let t2 = StreamSpec::new(&g12, b2, 7).unwrap();
        measure_pair_cross_cpu(&g12, s1, t2, 100_000).unwrap().beff == Ratio::integer(2)
    });
    check("synchronization from all 12 start banks", all_sync);

    println!("\n== Theorems 4-7 + eq. 29: barrier-situations (Fig. 3) ==");
    let g13 = Geometry::unsectioned(13, 6).unwrap();
    let b1 = StreamSpec::new(&g13, 0, 1).unwrap();
    let b2 = StreamSpec::new(&g13, 0, 6).unwrap();
    let class = classify_pair(&g13, &b1, &b2, true);
    println!("  classification: {class:?}");
    let ss = measure_pair_cross_cpu(&g13, b1, b2, 1_000_000).unwrap();
    check(
        &format!("barrier bandwidth {} = 1 + d1/d2 = 7/6", ss.beff),
        ss.beff == Ratio::new(7, 6),
    );
    let canonical = canonicalize(&g13, 1, 6).unwrap();
    let schedule = barrier_schedule(&g13, &canonical);
    println!(
        "  schedule per {}-cycle block: stream 1 x{}, stream 2 x{} (+{} delays)",
        schedule.period, schedule.stream1_grants, schedule.stream2_grants, schedule.stream2_delay
    );

    println!("\n== Theorems 8-9 + eq. 32: sections (Fig. 7) ==");
    let gsec = Geometry::new(12, 2, 2).unwrap();
    check("eq. 32 holds for d1 = d2 = 1", eq32_condition(&gsec, 1, 1));
    let p1 = StreamSpec::new(&gsec, 0, 1).unwrap();
    let analysis = analyze_sectioned_pair(&gsec, &p1, &p1);
    let offset = analysis.recommended_offset.expect("offset recommended");
    println!("  recommended relative start: (n_c + 1)*d1 = {offset}");
    let p2 = StreamSpec::new(&gsec, offset, 1).unwrap();
    let ss = measure_pair_same_cpu(&gsec, p1, p2, 100_000).unwrap();
    check(
        &format!("sectioned b_eff = {} = 2", ss.beff),
        ss.beff == Ratio::integer(2),
    );

    println!("\n== Appendix: isomorphism of distances ==");
    let g16b = Geometry::unsectioned(16, 4).unwrap();
    let c = canonicalize(&g16b, 6, 1).unwrap();
    println!("  6 (+) 1 on m = 16 canonicalises to {} (+) {}", c.d1, c.d2);
    let direct = vecmem::analytic::exact::exact_pair_steady(
        &g16b,
        &StreamSpec::new(&g16b, 0, 6).unwrap(),
        &StreamSpec::new(&g16b, 1, 1).unwrap(),
    );
    let mapped = vecmem::analytic::exact::exact_pair_steady(
        &g16b,
        &StreamSpec::new(&g16b, 0, c.map_bank(&g16b, 6)).unwrap(),
        &StreamSpec::new(&g16b, c.map_bank(&g16b, 1), c.map_bank(&g16b, 1)).unwrap(),
    );
    check(
        &format!("isomorphic pairs agree: {} = {}", direct.beff, mapped.beff),
        direct.beff == mapped.beff,
    );

    println!("\n== §IV capacity remark: 6 n_c = 24 > 16 banks ==");
    let cap = vecmem::analytic::multi::capacity_check(&xmp, 6, false);
    check("six full-rate ports cannot fit", !cap.possible());

    match class {
        PairClass::BarrierPossible { .. } | PairClass::UniqueBarrier { .. } => {}
        _ => println!("  (note: Fig. 3 class was {class:?})"),
    }
    println!("\nAll walkthrough claims verified.");
}
