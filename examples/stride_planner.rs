//! Stride planning: the paper's programmer-facing advice, automated.
//!
//! ```text
//! cargo run --example stride_planner [BANKS] [BANK_CYCLE]
//! ```
//!
//! For every stride 1..=2m on the given geometry (default: the Cray X-MP's
//! 16 banks, n_c = 4), reports the return number, the solo bandwidth, and
//! whether the stride is safe against a unit-stride competitor — then shows
//! how padding an array's leading dimension to be relatively prime to the
//! bank count (the paper's "safe method") fixes the bad rows and columns.

use vecmem::analytic::planner::{assess_stride, pad_dimension, pair_is_safe};
use vecmem::vproc::FortranArray;
use vecmem::Geometry;

fn main() {
    let mut args = std::env::args().skip(1);
    let banks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let nc: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let geom = Geometry::unsectioned(banks, nc).expect("valid geometry");

    println!("geometry: m = {banks}, n_c = {nc}\n");
    println!(
        "{:>7} {:>9} {:>6} {:>10} {:>12} {:>14}",
        "stride", "distance", "r", "solo", "self-safe", "vs unit-stride"
    );
    for stride in 1..=2 * banks {
        let rep = assess_stride(&geom, stride);
        println!(
            "{:>7} {:>9} {:>6} {:>10} {:>12} {:>14}",
            rep.stride,
            rep.distance,
            rep.return_number,
            rep.solo_bandwidth.to_string(),
            if rep.self_conflict_free { "yes" } else { "NO" },
            if pair_is_safe(&geom, stride, 1) {
                "safe"
            } else {
                "conflicts"
            },
        );
    }

    // The padding advice in action: a 64 x 64 matrix stored with leading
    // dimension 64 puts every column in one bank; padding to the next
    // dimension relatively prime to m spreads it over all banks.
    println!("\n--- array dimension padding ---");
    for dim in [64u64, 128, 1024] {
        let padded = pad_dimension(&geom, dim);
        let plain = FortranArray::new("A", vec![dim, dim], 0);
        let better = FortranArray::new("A", vec![padded, dim], 0);
        let plain_row = assess_stride(&geom, plain.stride_of_dimension(2, 1));
        let padded_row = assess_stride(&geom, better.stride_of_dimension(2, 1));
        println!(
            "A({dim},{dim}): row stride {} -> b_eff {} | padded to A({padded},{dim}): row stride {} -> b_eff {}",
            plain.stride_of_dimension(2, 1),
            plain_row.solo_bandwidth,
            better.stride_of_dimension(2, 1),
            padded_row.solo_bandwidth,
        );
    }
}
