//! Barrier-situation explorer.
//!
//! ```text
//! cargo run --example barrier_explorer [M] [NC] [D1] [D2]
//! ```
//!
//! For a distance pair on an m-way memory (default: the paper's Fig. 5
//! setting, m = 13, n_c = 4, d1 = 1, d2 = 3), prints the analytic
//! classification (Theorems 2-7), then sweeps every relative start bank and
//! shows which starts reach the barrier, which invert it, and which escape.

use vecmem::analytic::pair::{classify_pair, PairClass};
use vecmem::banksim::steady::measure_steady_state;
use vecmem::banksim::SimConfig;
use vecmem::{Geometry, Ratio, StreamSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let m: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);
    let nc: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let d1: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let d2: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let geom = Geometry::unsectioned(m, nc).expect("valid geometry");
    let s1 = StreamSpec::new(&geom, 0, d1 % m).expect("valid stream");
    let s2 = StreamSpec::new(&geom, 0, d2 % m).expect("valid stream");

    println!("m = {m}, n_c = {nc}, d1 = {d1}, d2 = {d2}");
    let class = classify_pair(&geom, &s1, &s2, true);
    println!("analytic classification (b1 = b2 = 0): {class:?}");
    if let PairClass::UniqueBarrier { beff, .. } = class {
        println!("unique barrier: every start position must give b_eff = {beff}");
    }

    println!(
        "\n{:>4} {:>8} {:>10} {:>10}  steady state",
        "b2", "b_eff", "stream 1", "stream 2"
    );
    let config = SimConfig::one_port_per_cpu(geom, 2);
    for b2 in 0..m {
        let t2 = StreamSpec::new(&geom, b2, d2 % m).expect("valid stream");
        let ss = measure_steady_state(&config, &[s1, t2], 10_000_000).expect("converges");
        let label = if ss.beff == Ratio::integer(2) {
            "conflict-free"
        } else if ss.per_port[0] == Ratio::integer(1) {
            "barrier (stream 2 delayed)"
        } else if ss.per_port[1] == Ratio::integer(1) {
            "inverted barrier (stream 1 delayed)"
        } else {
            "mutual delays"
        };
        println!(
            "{:>4} {:>8} {:>10} {:>10}  {label}",
            b2,
            ss.beff.to_string(),
            ss.per_port[0].to_string(),
            ss.per_port[1].to_string(),
        );
    }
}
