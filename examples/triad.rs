//! The paper's §IV triad experiment, runnable end to end:
//!
//! ```text
//! cargo run --release --example triad [MAX_INC]
//! ```
//!
//! Executes `A(I) = B(I) + C(I)*D(I)` (n = 1024) on one CPU of the two-CPU,
//! 16-bank Cray X-MP model for increments `1..=MAX_INC` (default 16), with
//! the other CPU hammering memory through three unit-stride ports, and
//! prints the five series of the paper's Fig. 10.

use vecmem::vproc::triad::{sweep_increments, TriadResult};

fn main() {
    let max_inc: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    println!("Triad A(I) = B(I) + C(I)*D(I), n = 1024, COMMON layout IDIM = 16*1024+1");
    println!("Machine: 2-CPU Cray X-MP model, m = 16 banks, s = 4 sections, n_c = 4\n");

    let contended = sweep_increments(max_inc, true);
    let alone = sweep_increments(max_inc, false);

    println!(
        "{:>4} | {:>12} {:>12} {:>9} | {:>9} {:>9} {:>9}",
        "INC", "time", "time-alone", "slowdown", "bank", "section", "simult."
    );
    for (c, a) in contended.iter().zip(&alone) {
        println!(
            "{:>4} | {:>12} {:>12} {:>8.2}x | {:>9} {:>9} {:>9}",
            c.inc,
            c.cycles,
            a.cycles,
            c.cycles as f64 / a.cycles as f64,
            c.triad_conflicts.bank,
            c.triad_conflicts.section,
            c.triad_conflicts.simultaneous,
        );
    }

    let mut ranked: Vec<&TriadResult> = contended.iter().collect();
    ranked.sort_by_key(|r| r.cycles);
    let best: Vec<u64> = ranked.iter().take(3).map(|r| r.inc).collect();
    println!("\nbest increments under contention: {best:?} (paper measured 1, 6, 11)");
    println!(
        "worst increment: {} ({} clock periods)",
        ranked.last().expect("nonempty").inc,
        ranked.last().expect("nonempty").cycles
    );
}
