//! Quickstart: predict, then verify, the effective bandwidth of two
//! concurrent vector access streams.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's Fig. 2 setting (12 banks, bank cycle 3 clocks),
//! classifies two streams analytically (Theorem 3), verifies the prediction
//! on the cycle-accurate simulator, and prints the access trace.

use vecmem::analytic::pair::classify_pair;
use vecmem::analytic::{predict_single, PortPlacement};
use vecmem::banksim::steady::measure_pair_cross_cpu;
use vecmem::banksim::{Engine, SimConfig, StreamWorkload};
use vecmem::{Geometry, StreamSpec};

fn main() {
    // An m-way interleaved memory: 12 banks, each busy 3 clock periods per
    // access, every bank with its own access path (s = m).
    let geom = Geometry::unsectioned(12, 3).expect("valid geometry");

    // Two vector streams: stride 1 from bank 0, stride 7 from bank 1.
    let s1 = StreamSpec::new(&geom, 0, 1).expect("valid stream");
    let s2 = StreamSpec::new(&geom, 1, 7).expect("valid stream");

    println!("memory: m = {}, n_c = {}", geom.banks(), geom.bank_cycle());
    println!(
        "stream 1: start bank {}, distance {}, return number {} => solo b_eff = {}",
        s1.start_bank,
        s1.distance,
        s1.return_number(&geom),
        predict_single(&geom, &s1),
    );
    println!(
        "stream 2: start bank {}, distance {}, return number {} => solo b_eff = {}",
        s2.start_bank,
        s2.distance,
        s2.return_number(&geom),
        predict_single(&geom, &s2),
    );

    // Analytical prediction (Theorems 2-7).
    let class = classify_pair(&geom, &s1, &s2, true);
    println!("\nanalytic classification: {class:?}");
    let _ = PortPlacement::DifferentCpus; // see vecmem::analytic::predict_pair

    // Exact verification on the simulator: run to the cyclic state.
    let steady = measure_pair_cross_cpu(&geom, s1, s2, 100_000).expect("converges");
    println!(
        "simulated steady state: b_eff = {} (per stream {} and {}), {} conflicts per period",
        steady.beff,
        steady.per_port[0],
        steady.per_port[1],
        steady.conflicts_per_period.total(),
    );

    // And the paper-style trace of the first 36 clock periods.
    let config = SimConfig::one_port_per_cpu(geom, 2);
    let mut engine = Engine::new(config).with_trace(36);
    let mut workload = StreamWorkload::infinite(&geom, &[s1, s2]);
    for _ in 0..36 {
        engine.step(&mut workload);
    }
    println!("\naccess trace (rows = banks, columns = clock periods):");
    print!("{}", engine.trace().expect("trace enabled").render_all());
}
