//! Memory-system design exploration: compare candidate geometries under
//! the same bank budget.
//!
//! ```text
//! cargo run --release --example memory_designer
//! ```
//!
//! A machine designer with a fixed budget of bank-periods can trade bank
//! count against bank cycle time, choose a section count, or switch the
//! bank mapping. This example scores candidate designs three ways:
//!
//! 1. the analytic design-space census (what fraction of stride pairs is
//!    guaranteed full bandwidth — Theorems 2–7);
//! 2. capacity (how many full-rate ports fit at all);
//! 3. simulated random-access throughput at 4 ports.

use vecmem::analytic::multi::capacity_check;
use vecmem::analytic::spectrum::distance_spectrum;
use vecmem::analytic::Geometry;
use vecmem::banksim::{measure_random_bandwidth, SimConfig};

fn main() {
    // Same silicon budget, different organisations: m·n_c = 64 everywhere.
    let candidates = [
        (16u64, 4u64, "16 banks x 4-cycle (Cray X-MP bipolar)"),
        (32, 2, "32 banks x 2-cycle (faster, narrower banks)"),
        (64, 1, "64 banks x 1-cycle (ideal SRAM)"),
        (8, 8, "8 banks x 8-cycle (cheap DRAM)"),
    ];

    println!(
        "{:<42} {:>10} {:>12} {:>14}",
        "design (m x n_c)", "cf-pairs", "max ports", "random(4p)"
    );
    for (m, nc, label) in candidates {
        let geom = Geometry::unsectioned(m, nc).expect("valid geometry");
        let census = distance_spectrum(&geom);
        let max_ports = (1..=16)
            .take_while(|&p| capacity_check(&geom, p, false).possible())
            .last()
            .unwrap_or(0);
        let random = measure_random_bandwidth(&SimConfig::one_port_per_cpu(geom, 4), 7, 100_000);
        println!(
            "{:<42} {:>9.1}% {:>12} {:>14.3}",
            label,
            100.0 * census.full_bandwidth_fraction(),
            max_ports,
            random,
        );
    }

    println!(
        "\nReading: 'cf-pairs' is the fraction of stride pairs Theorems 2-7\n\
         guarantee at full bandwidth from any start position; 'max ports' is\n\
         the largest p with p*n_c <= m; 'random(4p)' is simulated bandwidth\n\
         of four random-access ports. Fewer, slower banks lose on every axis\n\
         even at equal total bank-periods - the paper's interleaving argument\n\
         quantified."
    );
}
